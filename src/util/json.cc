#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace banks {
namespace {

/// Strict recursive-descent parser over a string_view cursor.
class Parser {
 public:
  Parser(std::string_view text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  Result<JsonValue> Run() {
    SkipWhitespace();
    JsonValue value;
    Status st = ParseValue(&value, 0);
    if (!st.ok()) return st;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("json parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      char c = Peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (AtEnd() || Peek() != c) return false;
    ++pos_;
    return true;
  }

  bool ConsumeLiteral(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > max_depth_) return Fail("nesting too deep");
    if (AtEnd()) return Fail("unexpected end of input");
    switch (Peek()) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': {
        std::string s;
        Status st = ParseString(&s);
        if (!st.ok()) return st;
        *out = JsonValue::Str(std::move(s));
        return Status::OK();
      }
      case 't':
        if (!ConsumeLiteral("true")) return Fail("invalid literal");
        *out = JsonValue::Bool(true);
        return Status::OK();
      case 'f':
        if (!ConsumeLiteral("false")) return Fail("invalid literal");
        *out = JsonValue::Bool(false);
        return Status::OK();
      case 'n':
        if (!ConsumeLiteral("null")) return Fail("invalid literal");
        *out = JsonValue();
        return Status::OK();
      default: return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    *out = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') return Fail("expected object key");
      std::string key;
      Status st = ParseString(&key);
      if (!st.ok()) return st;
      if (out->Find(key) != nullptr) {
        return Fail("duplicate object key \"" + key + "\"");
      }
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':' after object key");
      SkipWhitespace();
      JsonValue value;
      st = ParseValue(&value, depth + 1);
      if (!st.ok()) return st;
      out->Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Fail("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    *out = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      SkipWhitespace();
      JsonValue value;
      Status st = ParseValue(&value, depth + 1);
      if (!st.ok()) return st;
      out->Append(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Fail("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (true) {
      if (AtEnd()) return Fail("unterminated string");
      unsigned char c = static_cast<unsigned char>(text_[pos_++]);
      if (c == '"') return Status::OK();
      if (c < 0x20) return Fail("raw control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        continue;
      }
      if (AtEnd()) return Fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          Status st = ParseUnicodeEscape(out);
          if (!st.ok()) return st;
          break;
        }
        default: return Fail("invalid escape character");
      }
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<uint32_t>(c - 'A' + 10);
      else return Fail("invalid hex digit in \\u escape");
    }
    *out = value;
    return Status::OK();
  }

  Status ParseUnicodeEscape(std::string* out) {
    uint32_t cp = 0;
    Status st = ParseHex4(&cp);
    if (!st.ok()) return st;
    if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: need a low pair
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u') {
        return Fail("unpaired surrogate in \\u escape");
      }
      pos_ += 2;
      uint32_t low = 0;
      st = ParseHex4(&low);
      if (!st.ok()) return st;
      if (low < 0xDC00 || low > 0xDFFF) {
        return Fail("invalid low surrogate in \\u escape");
      }
      cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      return Fail("unpaired surrogate in \\u escape");
    }
    AppendUtf8(out, cp);
    return Status::OK();
  }

  static void AppendUtf8(std::string* out, uint32_t cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) {
      // sign consumed; digits must follow
    }
    if (AtEnd() || Peek() < '0' || Peek() > '9') {
      return Fail("invalid number");
    }
    if (Peek() == '0') {
      ++pos_;  // leading zero may not be followed by more digits
    } else {
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Fail("digits required after decimal point");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Fail("digits required in exponent");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      return Fail("number out of range");
    }
    *out = JsonValue::Number(value);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
  int max_depth_;
};

}  // namespace

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::Int(int64_t i) { return Number(static_cast<double>(i)); }

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

Result<JsonValue> JsonValue::Parse(std::string_view text, int max_depth) {
  return Parser(text, max_depth).Run();
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const Member& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

void JsonAppendQuoted(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char raw : s) {
    unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(raw);
        }
    }
  }
  out->push_back('"');
}

void JsonAppendNumber(std::string* out, double d) {
  if (!std::isfinite(d)) {
    out->append("null");
    return;
  }
  // Integral values within the exactly-representable range print without a
  // decimal point; everything else uses the shortest form that round-trips.
  double integral = 0.0;
  if (std::modf(d, &integral) == 0.0 && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out->append(buf);
    return;
  }
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  out->append(buf);
}

void JsonValue::DumpTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull: out->append("null"); return;
    case Kind::kBool: out->append(bool_ ? "true" : "false"); return;
    case Kind::kNumber: JsonAppendNumber(out, number_); return;
    case Kind::kString: JsonAppendQuoted(out, string_); return;
    case Kind::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out->push_back(',');
        items_[i].DumpTo(out);
      }
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        JsonAppendQuoted(out, members_[i].first);
        out->push_back(':');
        members_[i].second.DumpTo(out);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

}  // namespace banks
