// Compile-time race detection: Clang Thread Safety Analysis plumbing.
//
// The concurrency stack's correctness rests on locking and confinement
// invariants (writer serialization in RefreezeCoordinator, the session
// pool's shard-lock handoffs, mutex-guarded answer buffers) that used to
// live only in comments and whatever interleavings TSan happened to hit.
// This header turns them into compiler-checked contracts:
//
//   - BANKS_GUARDED_BY(mu) on a field makes every unlocked access a
//     compile error under Clang (-Wthread-safety, a hard -Werror in CI);
//   - BANKS_REQUIRES(mu) on a function makes callers prove they hold the
//     lock at every call site;
//   - util::Mutex / util::SharedMutex are drop-in std::mutex /
//     std::shared_mutex wrappers carrying the CAPABILITY annotation the
//     analysis needs, with scoped lockers (MutexLock, ReaderMutexLock,
//     WriterMutexLock) annotated as scoped capabilities.
//
// Everything compiles to plain std::mutex operations; on non-Clang
// compilers the macros expand to nothing, so GCC builds are unaffected.
//
// The negative compile test (tests/static/thread_annotations_negative.cc,
// wired into CTest on Clang builds) proves the gate actually rejects an
// unlocked access — so this header cannot silently rot into no-ops.
#ifndef BANKS_UTIL_THREAD_ANNOTATIONS_H_
#define BANKS_UTIL_THREAD_ANNOTATIONS_H_

#include <mutex>
#include <shared_mutex>

// Clang exposes the analysis through attributes; every other compiler
// sees empty macros. (The guard also covers clang-based tooling such as
// clang-tidy, which understands the attributes.)
#if defined(__clang__)
#define BANKS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define BANKS_THREAD_ANNOTATION(x)
#endif

/// Declares a class to be a lockable capability ("mutex", "role", ...).
#define BANKS_CAPABILITY(x) BANKS_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class that acquires on construction, releases on
/// destruction.
#define BANKS_SCOPED_CAPABILITY BANKS_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read/written while holding `x` (reads additionally
/// allow a shared hold).
#define BANKS_GUARDED_BY(x) BANKS_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* is guarded by `x`.
#define BANKS_PT_GUARDED_BY(x) BANKS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declared lock-ordering edges (deadlock detection).
#define BANKS_ACQUIRED_BEFORE(...) \
  BANKS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define BANKS_ACQUIRED_AFTER(...) \
  BANKS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Caller must hold the capability exclusively / at least shared.
#define BANKS_REQUIRES(...) \
  BANKS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define BANKS_REQUIRES_SHARED(...) \
  BANKS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires / releases the capability (not held on entry).
#define BANKS_ACQUIRE(...) \
  BANKS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define BANKS_ACQUIRE_SHARED(...) \
  BANKS_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define BANKS_RELEASE(...) \
  BANKS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define BANKS_RELEASE_SHARED(...) \
  BANKS_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define BANKS_RELEASE_GENERIC(...) \
  BANKS_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// Function tries to acquire; first argument is the success return value.
#define BANKS_TRY_ACQUIRE(...) \
  BANKS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (non-reentrancy / deadlock guard).
#define BANKS_EXCLUDES(...) BANKS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime-checked assertion that the capability is held.
#define BANKS_ASSERT_CAPABILITY(x) \
  BANKS_THREAD_ANNOTATION(assert_capability(x))

/// Accessor returns (an alias of) the given capability, so callers can
/// lock `obj.mu()` and the analysis equates it with the private member.
#define BANKS_RETURN_CAPABILITY(x) BANKS_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. The repo
/// invariant linter (tools/banks_lint.py) enforces that every use carries
/// an adjacent `rationale:` comment and that at most 3 exist repo-wide —
/// suppression is for the genuinely inexpressible, not the inconvenient.
#define BANKS_NO_THREAD_SAFETY_ANALYSIS \
  BANKS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace banks::util {

/// std::mutex with the CAPABILITY annotation the analysis tracks.
class BANKS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() BANKS_ACQUIRE() { mu_.lock(); }
  void Unlock() BANKS_RELEASE() { mu_.unlock(); }
  bool TryLock() BANKS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped std::mutex, for std::condition_variable interop (see
  /// MutexLock::native()). Waiting releases and reacquires the lock
  /// invisibly to the analysis, which is sound: the capability is held
  /// again by the time the wait returns.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// Scoped locker over Mutex (the std::lock_guard/std::unique_lock of the
/// annotated world). Holds a std::unique_lock internally so callers can
/// block on a std::condition_variable through native().
class BANKS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) BANKS_ACQUIRE(mu) : lock_(mu->native()) {}
  ~MutexLock() BANKS_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// For `cv.wait(lock.native())` wait loops. The analysis treats the
  /// capability as held across the wait; re-check guarded predicates in a
  /// while loop, as condition variables require anyway.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// std::shared_mutex with the CAPABILITY annotation (exclusive writers,
/// shared readers).
class BANKS_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() BANKS_ACQUIRE() { mu_.lock(); }
  void Unlock() BANKS_RELEASE() { mu_.unlock(); }
  void LockShared() BANKS_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() BANKS_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive locker over SharedMutex (publication side).
class BANKS_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) BANKS_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() BANKS_RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// Scoped shared locker over SharedMutex (read side).
class BANKS_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) BANKS_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() BANKS_RELEASE() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

}  // namespace banks::util

#endif  // BANKS_UTIL_THREAD_ANNOTATIONS_H_
