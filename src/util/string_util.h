// Small string helpers used by the tokenizer, CSV codec and HTML renderer.
#ifndef BANKS_UTIL_STRING_UTIL_H_
#define BANKS_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace banks {

/// ASCII lower-casing (keyword matching in BANKS is case-insensitive).
std::string ToLower(std::string_view s);

/// Splits on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char sep);

/// Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if lower(haystack) contains lower(needle) as a substring.
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// Levenshtein edit distance with early exit; returns limit+1 when the
/// distance exceeds `limit` (used by approximate keyword matching).
int BoundedEditDistance(std::string_view a, std::string_view b, int limit);

}  // namespace banks

#endif  // BANKS_UTIL_STRING_UTIL_H_
