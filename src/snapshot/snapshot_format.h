// On-disk layout of a BANKS snapshot file (single-file arena format).
//
//   [SnapshotHeader][SectionEntry x section_count][payload sections...]
//
// Every payload section starts at an 8-byte-aligned offset and carries its
// own checksum (SnapshotChecksum below) in the section table; the table
// itself is checksummed in the header. All integers are little-endian native — the header records
// an endianness marker and a format version, and OpenSnapshot refuses files
// whose marker or version does not match the running build (snapshots are a
// same-architecture restart/replication format, not an interchange format).
//
// The hot arrays (CSR offsets/edges, node weights, rid map, posting lists,
// numeric arrays) are stored exactly as their in-memory layout so the
// reader can hand out spans into the mapping without touching an element.
// GraphEdge is 16 bytes with 4 bytes of internal padding; the writer zeroes
// the padding so files are byte-deterministic and checksums reproducible.
#ifndef BANKS_SNAPSHOT_SNAPSHOT_FORMAT_H_
#define BANKS_SNAPSHOT_SNAPSHOT_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace banks {
namespace snapshot {

/// Word-at-a-time FNV-1a over the payload bytes (length mixed in up
/// front, tail bytes zero-extended into one final word). Checksumming
/// every section dominates OpenSnapshot's cold-start cost, so this runs
/// at ~8x the byte-at-a-time rate; writer and reader must agree on it,
/// which is why it lives in the format header.
inline uint64_t SnapshotChecksum(const void* data, size_t size) {
  constexpr uint64_t kPrime = 1099511628211ull;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 14695981039346656037ull ^ (size * kPrime);
  size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    uint64_t w;
    std::memcpy(&w, p + i, 8);
    h = (h ^ w) * kPrime;
  }
  if (i < size) {
    uint64_t w = 0;
    std::memcpy(&w, p + i, size - i);
    h = (h ^ w) * kPrime;
  }
  return h;
}

inline constexpr char kMagic[8] = {'B', 'N', 'K', 'S', 'N', 'A', 'P', '1'};
inline constexpr uint32_t kVersion = 1;
/// Written as a native uint32; reads back as 0x01020304 only on a machine
/// with the same byte order.
inline constexpr uint32_t kEndianMarker = 0x01020304u;
inline constexpr uint64_t kSectionAlignment = 8;

/// Section kinds, in on-disk order. Exactly one section of each kind.
enum SectionKind : uint32_t {
  kMeta = 1,            // SnapshotMeta
  kOutOffsets = 2,      // uint32[num_nodes + 1]
  kInOffsets = 3,       // uint32[num_nodes + 1]
  kOutEdges = 4,        // GraphEdge[num_edges], padding zeroed
  kInEdges = 5,         // GraphEdge[num_edges], padding zeroed
  kNodeWeights = 6,     // double[num_nodes]
  kNodeRids = 7,        // Rid[num_nodes] (NodeId -> Rid, node order)
  kKeywordBlob = 8,     // concatenated keyword bytes, sorted keyword order
  kKeywordOffsets = 9,  // uint64[num_keywords + 1] into kKeywordBlob
  kPostingOffsets = 10, // uint64[num_keywords + 1] into kPostings
  kPostings = 11,       // Rid[num_postings], flat sorted per keyword
  kMetadataBlob = 12,   // token\t table\t column\n records (tiny; parsed)
  kNumericValues = 13,  // double[num_numeric_values], ascending
  kNumericOffsets = 14, // uint64[num_numeric_values + 1] into kNumericRids
  kNumericRids = 15,    // Rid[num_numeric_entries]
};
inline constexpr uint32_t kNumSections = 15;

struct SnapshotHeader {
  char magic[8];
  uint32_t version;
  uint32_t endian;
  uint64_t epoch;
  uint64_t file_bytes;      // total file size; must match on open
  uint32_t section_count;
  uint32_t reserved;        // zero
  uint64_t table_checksum;  // SnapshotChecksum over the section table
};
static_assert(sizeof(SnapshotHeader) == 48, "on-disk layout is fixed");

struct SectionEntry {
  uint32_t kind;      // SectionKind
  uint32_t reserved;  // zero
  uint64_t offset;    // from file start; multiple of kSectionAlignment
  uint64_t size;      // payload bytes (unpadded)
  uint64_t checksum;  // SnapshotChecksum over the payload bytes
};
static_assert(sizeof(SectionEntry) == 32, "on-disk layout is fixed");

/// Fixed-size metadata section: element counts (cross-checked against
/// section sizes on open) and the FrozenGraph invariants, stored so the
/// reader reconstructs them without rescanning the arrays.
struct SnapshotMeta {
  uint64_t num_nodes;
  uint64_t num_edges;
  uint64_t num_keywords;
  uint64_t num_postings;
  uint64_t num_numeric_values;
  uint64_t num_numeric_entries;
  double max_node_weight;
  double min_edge_weight;
  /// DatabaseFingerprint(db) of the database the state derived from, or 0
  /// if the writer had no database at hand (0 disables the open-time
  /// pairing check).
  uint64_t db_fingerprint;
};
static_assert(sizeof(SnapshotMeta) == 72, "on-disk layout is fixed");

}  // namespace snapshot
}  // namespace banks

#endif  // BANKS_SNAPSHOT_SNAPSHOT_FORMAT_H_
