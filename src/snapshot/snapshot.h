// Snapshot persistence: save one LiveState to a single arena file and
// reopen it with an mmap instead of a rebuild.
//
// The paper's engine (§2.2) rebuilds the whole data graph from the
// database on every start; WriteSnapshot captures one epoch's derived
// state — CSR offsets/edges (both directions), node weights, the
// Rid<->NodeId map, and the inverted/metadata/numeric index contents — so
// a process restarts in O(milliseconds): OpenSnapshot maps the file
// read-only and builds a LiveState whose FrozenGraph and index readers are
// spans into the mapping (zero parse, zero per-element copies on the hot
// arrays). Replicas sharing a file also share its page cache.
//
// Lifetime contract: the mapping is owned by a shared arena handle stored
// inside every view-backed structure of the returned LiveState, so the
// file stays mapped as long as *any* session holds the epoch — dropping
// the OpenedSnapshot or the engine's current-state pointer never unmaps
// under a reader.
//
// Rotation contract: WriteSnapshot writes `<path>.tmp` and renames it over
// `<path>` (atomic on POSIX), so a crash mid-write never clobbers the
// previous good snapshot and concurrent openers see either the old or the
// new file, never a torn one.
//
// This header is the only sanctioned way to touch snapshot files;
// tools/banks_lint.py (snapshot-io-confinement) keeps raw mmap/munmap
// calls inside src/snapshot/.
#ifndef BANKS_SNAPSHOT_SNAPSHOT_H_
#define BANKS_SNAPSHOT_SNAPSHOT_H_

#include <cstdint>
#include <string>

#include "storage/database.h"
#include "update/live_state.h"
#include "util/status.h"

namespace banks {
namespace snapshot {

/// What WriteSnapshot did (RefreezeStats absorbs these).
struct SnapshotWriteStats {
  uint64_t epoch = 0;
  uint64_t file_bytes = 0;
  double write_ms = 0.0;
};

struct SnapshotOpenOptions {
  /// Verify every section checksum before trusting the mapping. Costs one
  /// sequential pass over the file; disable only for files a checksummed
  /// transport already validated.
  bool verify_checksums = true;
  /// Expected DatabaseFingerprint of the paired database; 0 skips the
  /// check. A snapshot opened against a different database would serve
  /// answers whose rids point at the wrong tuples.
  uint64_t expect_db_fingerprint = 0;
};

/// An opened, mapped snapshot. `state` is a complete epoch: overlays null,
/// epoch as written, ready to publish as an engine's read state.
struct OpenedSnapshot {
  LiveStateSnapshot state;
  uint64_t epoch = 0;
  uint64_t file_bytes = 0;
  /// Bytes of hot arrays served directly from the mapping.
  uint64_t mapped_bytes = 0;
  /// Bytes copied into owned memory (keyword strings, the rid->node hash,
  /// metadata records) — bookkeeping the reader must rebuild anyway. The
  /// CSR and posting arrays never contribute here.
  uint64_t copied_bytes = 0;
  /// Fingerprint recorded by the writer (0 if none).
  uint64_t db_fingerprint = 0;
};

/// Stable identity of a database for snapshot pairing: table names, ids,
/// row counts and live-row counts (not contents — the snapshot carries
/// derived state, and a content hash would cost a full scan per refreeze).
uint64_t DatabaseFingerprint(const Database& db);

/// Serialises `state` to `path` (via `<path>.tmp` + atomic rename).
/// `state` must be a frozen epoch: no delta overlays, no pending
/// mutations — refreeze first (FailedPrecondition otherwise).
/// `db_fingerprint` is stored for the open-time pairing check (0 = none).
Result<SnapshotWriteStats> WriteSnapshot(const LiveState& state,
                                         const std::string& path,
                                         uint64_t db_fingerprint = 0);

/// Maps `path` read-only and reconstructs its LiveState. Corrupt or
/// truncated files, wrong magic/version/endianness, and inconsistent
/// section tables all fail with a clean Status — never undefined
/// behaviour.
Result<OpenedSnapshot> OpenSnapshot(const std::string& path,
                                    const SnapshotOpenOptions& options = {});

}  // namespace snapshot
}  // namespace banks

#endif  // BANKS_SNAPSHOT_SNAPSHOT_H_
