// OpenSnapshot: map an arena file read-only and rebuild a LiveState whose
// hot arrays are spans into the mapping.
//
// Validation order: stat/map -> header (magic, version, endianness, size)
// -> section table (bounds, alignment, kinds, table checksum) -> per-section
// checksums (optional) -> structural cross-checks (counts vs sizes,
// monotonic offset arrays). Only after all of that are spans handed to the
// view-backed structures, so a corrupt file fails with a clean Status and
// can never index out of the mapping.
//
// This file owns the only mmap/munmap calls in the tree outside tests
// (tools/banks_lint.py, snapshot-io-confinement).
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "snapshot/snapshot.h"
#include "snapshot/snapshot_format.h"

namespace banks {
namespace snapshot {

namespace {

/// RAII read-only mapping; the shared_ptr<const MappedFile> handed to the
/// view structures keeps the pages mapped until the last epoch holder
/// drops out.
class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile() {
    if (data_ != nullptr) ::munmap(data_, size_);
  }

  Status Map(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      return Status::IoError("snapshot: cannot open '" + path + "'");
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return Status::IoError("snapshot: cannot stat '" + path + "'");
    }
    if (st.st_size < static_cast<off_t>(sizeof(SnapshotHeader))) {
      ::close(fd);
      return Status::Corruption("snapshot: '" + path +
                                "' is smaller than a header");
    }
    void* p = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                     MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (p == MAP_FAILED) {
      return Status::IoError("snapshot: cannot map '" + path + "'");
    }
    data_ = p;
    size_ = static_cast<size_t>(st.st_size);
    return Status::OK();
  }

  const char* data() const { return static_cast<const char*>(data_); }
  size_t size() const { return size_; }

 private:
  void* data_ = nullptr;
  size_t size_ = 0;
};

/// A validated section: pointer into the mapping + size.
struct Section {
  const char* data = nullptr;
  uint64_t size = 0;
};

template <typename T>
std::span<const T> SectionSpan(const Section& s) {
  return {reinterpret_cast<const T*>(s.data), s.size / sizeof(T)};
}

/// Checks `offsets` is a monotonic prefix-sum array ending at `total`.
bool OffsetsValid(std::span<const uint64_t> offsets, uint64_t total) {
  if (offsets.empty() || offsets.front() != 0 || offsets.back() != total) {
    return false;
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) return false;
  }
  return true;
}

bool OffsetsValid32(std::span<const uint32_t> offsets, uint64_t total) {
  if (offsets.empty() || offsets.front() != 0 || offsets.back() != total) {
    return false;
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) return false;
  }
  return true;
}

/// Bounds-checked cursor over the metadata blob.
class BlobReader {
 public:
  explicit BlobReader(Section s) : p_(s.data), end_(s.data + s.size) {}

  bool AtEnd() const { return p_ == end_; }

  bool ReadU32(uint32_t* v) {
    if (end_ - p_ < static_cast<ptrdiff_t>(sizeof(uint32_t))) return false;
    std::memcpy(v, p_, sizeof(uint32_t));
    p_ += sizeof(uint32_t);
    return true;
  }

  bool ReadString(std::string* s) {
    uint32_t len = 0;
    if (!ReadU32(&len)) return false;
    if (end_ - p_ < static_cast<ptrdiff_t>(len)) return false;
    s->assign(p_, len);
    p_ += len;
    return true;
  }

 private:
  const char* p_;
  const char* end_;
};

}  // namespace

Result<OpenedSnapshot> OpenSnapshot(const std::string& path,
                                    const SnapshotOpenOptions& options) {
  auto mapped = std::make_shared<MappedFile>();
  if (Status s = mapped->Map(path); !s.ok()) return s;
  const char* base = mapped->data();
  const size_t file_size = mapped->size();

  SnapshotHeader header{};
  std::memcpy(&header, base, sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("snapshot: bad magic in '" + path + "'");
  }
  if (header.endian != kEndianMarker) {
    return Status::InvalidArgument(
        "snapshot: '" + path +
        "' was written on a machine with different endianness");
  }
  if (header.version != kVersion) {
    return Status::InvalidArgument(
        "snapshot: '" + path + "' has unsupported format version " +
        std::to_string(header.version) + " (expected " +
        std::to_string(kVersion) + ")");
  }
  if (header.file_bytes != file_size) {
    return Status::Corruption(
        "snapshot: '" + path + "' is truncated or padded (header says " +
        std::to_string(header.file_bytes) + " bytes, file has " +
        std::to_string(file_size) + ")");
  }
  if (header.section_count != kNumSections) {
    return Status::Corruption("snapshot: unexpected section count " +
                              std::to_string(header.section_count));
  }

  const uint64_t table_bytes =
      uint64_t{kNumSections} * sizeof(SectionEntry);
  if (sizeof(SnapshotHeader) + table_bytes > file_size) {
    return Status::Corruption("snapshot: section table out of bounds");
  }
  const char* table_base = base + sizeof(SnapshotHeader);
  if (SnapshotChecksum(table_base, table_bytes) != header.table_checksum) {
    return Status::Corruption("snapshot: section table checksum mismatch");
  }

  // Validate and index the sections by kind.
  Section sections[kNumSections + 1];  // 1-based by SectionKind
  for (uint32_t i = 0; i < kNumSections; ++i) {
    SectionEntry e{};
    std::memcpy(&e, table_base + i * sizeof(SectionEntry), sizeof(e));
    if (e.kind < 1 || e.kind > kNumSections || e.kind != i + 1) {
      return Status::Corruption("snapshot: unexpected section kind " +
                                std::to_string(e.kind));
    }
    if (e.offset % kSectionAlignment != 0 || e.offset > file_size ||
        e.size > file_size - e.offset) {
      return Status::Corruption("snapshot: section " + std::to_string(e.kind) +
                                " out of bounds");
    }
    if (options.verify_checksums &&
        SnapshotChecksum(base + e.offset, e.size) != e.checksum) {
      return Status::Corruption("snapshot: checksum mismatch in section " +
                                std::to_string(e.kind));
    }
    sections[e.kind] = Section{base + e.offset, e.size};
  }

  // Structural cross-checks against the meta section.
  if (sections[kMeta].size != sizeof(SnapshotMeta)) {
    return Status::Corruption("snapshot: meta section has wrong size");
  }
  SnapshotMeta meta{};
  std::memcpy(&meta, sections[kMeta].data, sizeof(meta));
  if (options.expect_db_fingerprint != 0 && meta.db_fingerprint != 0 &&
      meta.db_fingerprint != options.expect_db_fingerprint) {
    return Status::FailedPrecondition(
        "snapshot: '" + path +
        "' was written against a different database (fingerprint mismatch)");
  }

  const auto expect = [&](SectionKind kind, uint64_t bytes) {
    return sections[kind].size == bytes;
  };
  if (!expect(kOutOffsets, (meta.num_nodes + 1) * sizeof(uint32_t)) ||
      !expect(kInOffsets, (meta.num_nodes + 1) * sizeof(uint32_t)) ||
      !expect(kOutEdges, meta.num_edges * sizeof(GraphEdge)) ||
      !expect(kInEdges, meta.num_edges * sizeof(GraphEdge)) ||
      !expect(kNodeWeights, meta.num_nodes * sizeof(double)) ||
      !expect(kNodeRids, meta.num_nodes * sizeof(Rid)) ||
      !expect(kKeywordOffsets, (meta.num_keywords + 1) * sizeof(uint64_t)) ||
      !expect(kPostingOffsets, (meta.num_keywords + 1) * sizeof(uint64_t)) ||
      !expect(kPostings, meta.num_postings * sizeof(Rid)) ||
      !expect(kNumericValues, meta.num_numeric_values * sizeof(double)) ||
      !expect(kNumericOffsets,
              meta.num_numeric_values == 0
                  ? sizeof(uint64_t)
                  : (meta.num_numeric_values + 1) * sizeof(uint64_t)) ||
      !expect(kNumericRids, meta.num_numeric_entries * sizeof(Rid))) {
    return Status::Corruption(
        "snapshot: section sizes disagree with recorded counts");
  }

  const auto out_offsets = SectionSpan<uint32_t>(sections[kOutOffsets]);
  const auto in_offsets = SectionSpan<uint32_t>(sections[kInOffsets]);
  const auto out_edges = SectionSpan<GraphEdge>(sections[kOutEdges]);
  const auto in_edges = SectionSpan<GraphEdge>(sections[kInEdges]);
  const auto node_weights = SectionSpan<double>(sections[kNodeWeights]);
  const auto node_rids = SectionSpan<Rid>(sections[kNodeRids]);
  const auto keyword_offsets = SectionSpan<uint64_t>(sections[kKeywordOffsets]);
  const auto posting_offsets = SectionSpan<uint64_t>(sections[kPostingOffsets]);
  const auto postings = SectionSpan<Rid>(sections[kPostings]);
  const auto numeric_values = SectionSpan<double>(sections[kNumericValues]);
  const auto numeric_offsets = SectionSpan<uint64_t>(sections[kNumericOffsets]);
  const auto numeric_rids = SectionSpan<Rid>(sections[kNumericRids]);

  if (!OffsetsValid32(out_offsets, meta.num_edges) ||
      !OffsetsValid32(in_offsets, meta.num_edges) ||
      !OffsetsValid(keyword_offsets, sections[kKeywordBlob].size) ||
      !OffsetsValid(posting_offsets, meta.num_postings) ||
      !OffsetsValid(numeric_offsets, meta.num_numeric_entries)) {
    return Status::Corruption("snapshot: inconsistent offset arrays");
  }
  for (size_t i = 1; i < numeric_values.size(); ++i) {
    if (!(numeric_values[i - 1] < numeric_values[i])) {
      return Status::Corruption("snapshot: numeric values not ascending");
    }
  }

  const std::shared_ptr<const void> arena = mapped;

  auto state = std::make_shared<LiveState>();
  state->epoch = header.epoch;
  state->pending_mutations = 0;

  // Graph: CSR arrays stay mapped; node_rid is bulk-copied (DataGraph owns
  // it as a vector) and the rid->node hash is rebuilt.
  auto dg = std::make_shared<DataGraph>();
  dg->graph = FrozenGraph(out_offsets, out_edges, in_offsets, in_edges,
                          node_weights, meta.max_node_weight,
                          meta.min_edge_weight, arena);
  dg->node_rid.assign(node_rids.begin(), node_rids.end());
  dg->rid_node.reserve(dg->node_rid.size());
  for (NodeId n = 0; n < dg->node_rid.size(); ++n) {
    dg->rid_node.emplace(dg->node_rid[n].Pack(), n);
  }
  state->dg = std::move(dg);

  // Inverted index: keyword strings are owned (the hash map must be built
  // anyway), posting lists stay mapped.
  const char* kw_blob = sections[kKeywordBlob].data;
  std::vector<std::pair<std::string, std::span<const Rid>>> entries;
  entries.reserve(meta.num_keywords);
  for (uint64_t i = 0; i < meta.num_keywords; ++i) {
    std::string kw(kw_blob + keyword_offsets[i],
                   keyword_offsets[i + 1] - keyword_offsets[i]);
    entries.emplace_back(
        std::move(kw),
        postings.subspan(posting_offsets[i],
                         posting_offsets[i + 1] - posting_offsets[i]));
  }
  auto index = std::make_shared<InvertedIndex>();
  index->AttachViews(std::move(entries), arena);
  state->index = std::move(index);

  // Metadata index: schema-sized; parsed and rebuilt owning.
  std::vector<std::pair<std::string, std::vector<MetadataMatch>>> meta_entries;
  {
    BlobReader blob(sections[kMetadataBlob]);
    while (!blob.AtEnd()) {
      std::string tok;
      uint32_t count = 0;
      if (!blob.ReadString(&tok) || !blob.ReadU32(&count)) {
        return Status::Corruption("snapshot: malformed metadata records");
      }
      std::vector<MetadataMatch> ms;
      ms.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        MetadataMatch m;
        if (!blob.ReadString(&m.table) || !blob.ReadString(&m.column)) {
          return Status::Corruption("snapshot: malformed metadata records");
        }
        ms.push_back(std::move(m));
      }
      meta_entries.emplace_back(std::move(tok), std::move(ms));
    }
  }
  auto metadata = std::make_shared<MetadataIndex>();
  metadata->Restore(std::move(meta_entries));
  state->metadata = std::move(metadata);

  auto numeric = std::make_shared<NumericIndex>();
  numeric->AttachViews(numeric_values, numeric_offsets, numeric_rids, arena);
  state->numeric = std::move(numeric);

  OpenedSnapshot opened;
  opened.epoch = header.epoch;
  opened.file_bytes = file_size;
  opened.mapped_bytes = sections[kOutOffsets].size + sections[kInOffsets].size +
                        sections[kOutEdges].size + sections[kInEdges].size +
                        sections[kNodeWeights].size + sections[kPostings].size +
                        sections[kNumericValues].size +
                        sections[kNumericOffsets].size +
                        sections[kNumericRids].size;
  opened.copied_bytes = sections[kNodeRids].size +
                        sections[kKeywordBlob].size +
                        sections[kKeywordOffsets].size +
                        sections[kPostingOffsets].size +
                        sections[kMetadataBlob].size;
  opened.db_fingerprint = meta.db_fingerprint;
  opened.state = std::move(state);
  return opened;
}

}  // namespace snapshot
}  // namespace banks
