// WriteSnapshot: serialise one frozen LiveState into the arena format.
//
// The writer runs off the serving path (the refreeze coordinator calls it
// after publishing the new epoch), so it favours simplicity: staging
// buffers per section, one sequential pass over the file, checksums
// computed from the staged bytes, then the header/section table patched in
// at the front and the whole file renamed into place.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "snapshot/snapshot.h"
#include "snapshot/snapshot_format.h"
#include "util/hash.h"

namespace banks {
namespace snapshot {

namespace {

void AppendU32(std::string* blob, uint32_t v) {
  blob->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendLenPrefixed(std::string* blob, const std::string& s) {
  AppendU32(blob, static_cast<uint32_t>(s.size()));
  blob->append(s);
}

// One staged payload section.
struct Staged {
  uint32_t kind = 0;
  const void* data = nullptr;
  uint64_t size = 0;
};

}  // namespace

uint64_t DatabaseFingerprint(const Database& db) {
  // Identity, not contents: table names/ids and row counts (total and
  // live). Enough to catch "snapshot from a different or mutated
  // database" without a full scan.
  uint64_t h = Fnv1a("banks-db-fingerprint-v1");
  for (const auto& name : db.table_names()) {
    const Table* t = db.table(name);
    HashCombine(&h, Fnv1a(name));
    HashCombine(&h, t->id());
    HashCombine(&h, t->num_rows());
    uint64_t live = 0;
    for (uint32_t r = 0; r < t->num_rows(); ++r) {
      if (!t->IsDeleted(r)) ++live;
    }
    HashCombine(&h, live);
  }
  return h;
}

Result<SnapshotWriteStats> WriteSnapshot(const LiveState& state,
                                         const std::string& path,
                                         uint64_t db_fingerprint) {
  const auto t0 = std::chrono::steady_clock::now();
  if (state.dg == nullptr || state.index == nullptr ||
      state.metadata == nullptr || state.numeric == nullptr) {
    return Status::InvalidArgument("snapshot: incomplete LiveState");
  }
  if (state.delta != nullptr || state.index_delta != nullptr ||
      state.pending_mutations != 0) {
    return Status::FailedPrecondition(
        "snapshot: state has pending overlays; refreeze before saving");
  }

  const FrozenGraph& g = state.dg->graph;
  const auto out_offsets = g.out_offsets();
  const auto in_offsets = g.in_offsets();
  const auto node_weights = g.node_weights();

  // Edges are re-staged with their 4 padding bytes zeroed so the file (and
  // its checksums) are byte-deterministic.
  auto stage_edges = [](FrozenGraph::EdgeSpan edges) {
    std::vector<GraphEdge> staged(edges.size());
    if (!staged.empty()) {
      // void* cast: GraphEdge is trivially copyable (NSDMIs only make it
      // non-trivial to default-construct); the memset zeroes its padding.
      std::memset(static_cast<void*>(staged.data()), 0,
                  staged.size() * sizeof(GraphEdge));
    }
    for (size_t i = 0; i < edges.size(); ++i) {
      staged[i].to = edges[i].to;
      staged[i].weight = edges[i].weight;
    }
    return staged;
  };
  const std::vector<GraphEdge> out_edges = stage_edges(g.out_edges());
  const std::vector<GraphEdge> in_edges = stage_edges(g.in_edges());

  // Inverted index: sorted keywords -> blob + offsets + flat postings.
  const std::vector<std::string> keywords = state.index->AllKeywords();
  std::string keyword_blob;
  std::vector<uint64_t> keyword_offsets;
  std::vector<uint64_t> posting_offsets;
  std::vector<Rid> postings;
  keyword_offsets.reserve(keywords.size() + 1);
  posting_offsets.reserve(keywords.size() + 1);
  postings.reserve(state.index->num_postings());
  keyword_offsets.push_back(0);
  posting_offsets.push_back(0);
  for (const auto& kw : keywords) {
    keyword_blob.append(kw);
    keyword_offsets.push_back(keyword_blob.size());
    const auto list = state.index->Lookup(kw);
    postings.insert(postings.end(), list.begin(), list.end());
    posting_offsets.push_back(postings.size());
  }

  // Metadata index: tiny length-prefixed records, sorted token order.
  std::string metadata_blob;
  for (const auto& tok : state.metadata->AllTokens()) {
    AppendLenPrefixed(&metadata_blob, tok);
    const auto ms = state.metadata->Lookup(tok);
    AppendU32(&metadata_blob, static_cast<uint32_t>(ms.size()));
    for (const auto& m : ms) {
      AppendLenPrefixed(&metadata_blob, m.table);
      AppendLenPrefixed(&metadata_blob, m.column);
    }
  }

  // Numeric index: distinct ascending values + per-value rid ranges.
  std::vector<double> numeric_values;
  std::vector<uint64_t> numeric_offsets{0};
  std::vector<Rid> numeric_rids;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (const auto& m : state.numeric->LookupRange(-kInf, kInf)) {
    if (numeric_values.empty() || numeric_values.back() != m.value) {
      if (!numeric_values.empty()) {
        numeric_offsets.push_back(numeric_rids.size());
      }
      numeric_values.push_back(m.value);
    }
    numeric_rids.push_back(m.rid);
  }
  if (!numeric_values.empty()) numeric_offsets.push_back(numeric_rids.size());

  SnapshotMeta meta{};
  meta.num_nodes = node_weights.size();
  meta.num_edges = out_edges.size();
  meta.num_keywords = keywords.size();
  meta.num_postings = postings.size();
  meta.num_numeric_values = numeric_values.size();
  meta.num_numeric_entries = numeric_rids.size();
  meta.max_node_weight = g.MaxNodeWeight();
  meta.min_edge_weight = g.MinEdgeWeight();
  meta.db_fingerprint = db_fingerprint;

  const std::vector<Rid>& node_rid = state.dg->node_rid;
  const Staged sections[kNumSections] = {
      {kMeta, &meta, sizeof(meta)},
      {kOutOffsets, out_offsets.data(), out_offsets.size_bytes()},
      {kInOffsets, in_offsets.data(), in_offsets.size_bytes()},
      {kOutEdges, out_edges.data(), out_edges.size() * sizeof(GraphEdge)},
      {kInEdges, in_edges.data(), in_edges.size() * sizeof(GraphEdge)},
      {kNodeWeights, node_weights.data(), node_weights.size_bytes()},
      {kNodeRids, node_rid.data(), node_rid.size() * sizeof(Rid)},
      {kKeywordBlob, keyword_blob.data(), keyword_blob.size()},
      {kKeywordOffsets, keyword_offsets.data(),
       keyword_offsets.size() * sizeof(uint64_t)},
      {kPostingOffsets, posting_offsets.data(),
       posting_offsets.size() * sizeof(uint64_t)},
      {kPostings, postings.data(), postings.size() * sizeof(Rid)},
      {kMetadataBlob, metadata_blob.data(), metadata_blob.size()},
      {kNumericValues, numeric_values.data(),
       numeric_values.size() * sizeof(double)},
      {kNumericOffsets, numeric_offsets.data(),
       numeric_offsets.size() * sizeof(uint64_t)},
      {kNumericRids, numeric_rids.data(), numeric_rids.size() * sizeof(Rid)},
  };

  // Lay out the file: header, table, 8-aligned payloads in kind order.
  std::vector<SectionEntry> table(kNumSections);
  uint64_t offset = sizeof(SnapshotHeader) + kNumSections * sizeof(SectionEntry);
  for (uint32_t i = 0; i < kNumSections; ++i) {
    offset = (offset + kSectionAlignment - 1) & ~(kSectionAlignment - 1);
    table[i].kind = sections[i].kind;
    table[i].reserved = 0;
    table[i].offset = offset;
    table[i].size = sections[i].size;
    table[i].checksum = SnapshotChecksum(sections[i].data, sections[i].size);
    offset += sections[i].size;
  }
  const uint64_t file_bytes = offset;

  SnapshotHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.endian = kEndianMarker;
  header.epoch = state.epoch;
  header.file_bytes = file_bytes;
  header.section_count = kNumSections;
  header.reserved = 0;
  header.table_checksum =
      SnapshotChecksum(table.data(), table.size() * sizeof(SectionEntry));

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("snapshot: cannot write '" + tmp + "'");
    out.write(reinterpret_cast<const char*>(&header), sizeof(header));
    out.write(reinterpret_cast<const char*>(table.data()),
              table.size() * sizeof(SectionEntry));
    uint64_t written = sizeof(header) + table.size() * sizeof(SectionEntry);
    static const char kZeros[kSectionAlignment] = {};
    for (uint32_t i = 0; i < kNumSections; ++i) {
      if (table[i].offset > written) {
        out.write(kZeros, table[i].offset - written);
        written = table[i].offset;
      }
      if (sections[i].size > 0) {
        out.write(static_cast<const char*>(sections[i].data),
                  static_cast<std::streamsize>(sections[i].size));
      }
      written += sections[i].size;
    }
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::IoError("snapshot: short write to '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("snapshot: cannot rename '" + tmp + "' to '" +
                           path + "'");
  }

  SnapshotWriteStats stats;
  stats.epoch = state.epoch;
  stats.file_bytes = file_bytes;
  stats.write_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return stats;
}

}  // namespace snapshot
}  // namespace banks
