#include "storage/csv.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace banks {

namespace fs = std::filesystem;

std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

std::string CsvEscape(const std::string& field) {
  bool needs = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

namespace {

const char* TypeTag(ValueType t) {
  switch (t) {
    case ValueType::kInt: return "int";
    case ValueType::kDouble: return "double";
    case ValueType::kString: return "string";
    case ValueType::kNull: return "string";
  }
  return "string";
}

Result<ValueType> ParseTypeTag(const std::string& tag) {
  if (tag == "int") return ValueType::kInt;
  if (tag == "double") return ValueType::kDouble;
  if (tag == "string") return ValueType::kString;
  return Status::Corruption("unknown column type '" + tag + "'");
}

// CSV cells: empty cell = NULL; otherwise parsed per declared type.
Value ParseCell(const std::string& cell, ValueType type) {
  if (cell.empty()) return Value::Null();
  switch (type) {
    case ValueType::kInt:
      return Value(static_cast<int64_t>(std::strtoll(cell.c_str(),
                                                     nullptr, 10)));
    case ValueType::kDouble:
      return Value(std::strtod(cell.c_str(), nullptr));
    default:
      return Value(cell);
  }
}

}  // namespace

Status SaveDatabase(const Database& db, const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IoError("cannot create '" + dir + "': " +
                                 ec.message());

  std::ofstream cat(fs::path(dir) / "catalog.txt");
  if (!cat) return Status::IoError("cannot write catalog.txt");
  for (const auto& name : db.table_names()) {
    const Table* t = db.table(name);
    cat << "table " << name << "\n";
    for (const auto& col : t->schema().columns()) {
      cat << "  column " << col.name << " " << TypeTag(col.type) << "\n";
    }
    if (t->schema().has_primary_key()) {
      cat << "  pk";
      for (size_t ci : t->schema().primary_key()) {
        cat << " " << t->schema().columns()[ci].name;
      }
      cat << "\n";
    }
  }
  for (const auto& fk : db.foreign_keys()) {
    cat << "fk " << fk.name << " " << fk.table << " ("
        << Join(fk.columns, ",") << ") -> " << fk.ref_table << " ("
        << Join(fk.ref_columns, ",") << ")\n";
  }
  for (const auto& ind : db.inclusion_dependencies()) {
    cat << "ind " << ind.name << " " << ind.table << " (" << ind.column
        << ") -> " << ind.ref_table << " (" << ind.ref_column << ")\n";
  }
  cat.close();

  for (const auto& name : db.table_names()) {
    const Table* t = db.table(name);
    std::ofstream out(fs::path(dir) / (name + ".csv"));
    if (!out) return Status::IoError("cannot write " + name + ".csv");
    // Header row.
    std::vector<std::string> header;
    for (const auto& col : t->schema().columns()) header.push_back(col.name);
    out << Join(header, ",") << "\n";
    for (const auto& row : t->rows()) {
      std::string line;
      for (size_t i = 0; i < row.size(); ++i) {
        if (i) line += ",";
        line += CsvEscape(row.at(i).ToText());
      }
      out << line << "\n";
    }
  }
  return Status::OK();
}

Result<Database> LoadDatabase(const std::string& dir) {
  std::ifstream cat(fs::path(dir) / "catalog.txt");
  if (!cat) return Status::IoError("cannot open catalog.txt in '" + dir + "'");

  Database db;
  // First pass: parse catalog into schema descriptions.
  struct PendingTable {
    std::string name;
    std::vector<ColumnDef> cols;
    std::vector<std::string> pk;
  };
  std::vector<PendingTable> pending;
  std::vector<ForeignKey> pending_fks;
  std::vector<InclusionDependency> pending_inds;

  std::string line;
  while (std::getline(cat, line)) {
    std::string_view sv = Trim(line);
    if (sv.empty()) continue;
    std::istringstream ss{std::string(sv)};
    std::string tok;
    ss >> tok;
    if (tok == "table") {
      PendingTable pt;
      ss >> pt.name;
      if (pt.name.empty()) return Status::Corruption("table with no name");
      pending.push_back(std::move(pt));
    } else if (tok == "column") {
      if (pending.empty()) return Status::Corruption("column before table");
      std::string cname, ctype;
      ss >> cname >> ctype;
      auto vt = ParseTypeTag(ctype);
      if (!vt.ok()) return vt.status();
      pending.back().cols.emplace_back(cname, vt.value());
    } else if (tok == "pk") {
      if (pending.empty()) return Status::Corruption("pk before table");
      std::string col;
      while (ss >> col) pending.back().pk.push_back(col);
    } else if (tok == "fk") {
      // fk <name> <table> (<cols>) -> <ref_table> (<ref_cols>)
      ForeignKey fk;
      std::string cols_paren, arrow, ref_paren;
      ss >> fk.name >> fk.table >> cols_paren >> arrow >> fk.ref_table >>
          ref_paren;
      if (arrow != "->" || cols_paren.size() < 2 || ref_paren.size() < 2) {
        return Status::Corruption("malformed fk line: " + line);
      }
      auto strip = [](const std::string& p) {
        return p.substr(1, p.size() - 2);
      };
      for (auto& c : Split(strip(cols_paren), ',')) fk.columns.push_back(c);
      for (auto& c : Split(strip(ref_paren), ','))
        fk.ref_columns.push_back(c);
      pending_fks.push_back(std::move(fk));
    } else if (tok == "ind") {
      // ind <name> <table> (<col>) -> <ref_table> (<ref_col>)
      InclusionDependency ind;
      std::string col_paren, arrow, ref_paren;
      ss >> ind.name >> ind.table >> col_paren >> arrow >> ind.ref_table >>
          ref_paren;
      if (arrow != "->" || col_paren.size() < 2 || ref_paren.size() < 2) {
        return Status::Corruption("malformed ind line: " + line);
      }
      ind.column = col_paren.substr(1, col_paren.size() - 2);
      ind.ref_column = ref_paren.substr(1, ref_paren.size() - 2);
      pending_inds.push_back(std::move(ind));
    } else {
      return Status::Corruption("unknown catalog directive '" + tok + "'");
    }
  }

  for (auto& pt : pending) {
    Status s = db.CreateTable(TableSchema(pt.name, pt.cols, pt.pk));
    if (!s.ok()) return s;
  }

  // Second pass: data files.
  for (const auto& name : db.table_names()) {
    const Table* t = db.table(name);
    std::ifstream in(fs::path(dir) / (name + ".csv"));
    if (!in) return Status::IoError("missing data file " + name + ".csv");
    std::string row_line;
    bool header = true;
    while (std::getline(in, row_line)) {
      if (!row_line.empty() && row_line.back() == '\r') row_line.pop_back();
      if (header) {
        header = false;
        continue;
      }
      if (row_line.empty()) continue;
      auto cells = ParseCsvLine(row_line);
      if (cells.size() != t->schema().num_columns()) {
        return Status::Corruption("row arity mismatch in " + name + ".csv");
      }
      std::vector<Value> vals;
      vals.reserve(cells.size());
      for (size_t i = 0; i < cells.size(); ++i) {
        vals.push_back(ParseCell(cells[i], t->schema().columns()[i].type));
      }
      auto r = db.Insert(name, Tuple(std::move(vals)));
      if (!r.ok()) return r.status();
    }
  }

  // FKs/INDs last (tables and PKs must exist).
  for (auto& fk : pending_fks) {
    Status s = db.AddForeignKey(std::move(fk));
    if (!s.ok()) return s;
  }
  for (auto& ind : pending_inds) {
    Status s = db.AddInclusionDependency(std::move(ind));
    if (!s.ok()) return s;
  }
  return db;
}

}  // namespace banks
