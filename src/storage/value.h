// Typed attribute values.
//
// BANKS matches keywords against "tokens appearing in any textual attribute"
// (§2.3); values therefore expose a canonical textual form used both by the
// tokenizer and the browsing renderer.
#ifndef BANKS_STORAGE_VALUE_H_
#define BANKS_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace banks {

/// Column/value type tags.
enum class ValueType { kNull = 0, kInt, kDouble, kString };

/// Returns "NULL", "INT", "DOUBLE" or "STRING".
const char* ValueTypeName(ValueType t);

/// A dynamically-typed SQL-ish value: NULL, 64-bit int, double, or string.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(const char* s) : v_(std::string(s)) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    switch (v_.index()) {
      case 0: return ValueType::kNull;
      case 1: return ValueType::kInt;
      case 2: return ValueType::kDouble;
      default: return ValueType::kString;
    }
  }

  bool is_null() const { return type() == ValueType::kNull; }

  /// Accessors; behaviour is undefined unless the type matches.
  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Canonical text: "" for NULL, decimal for ints, shortest round-trip for
  /// doubles, the string itself otherwise. Used by tokenizer, CSV and HTML.
  std::string ToText() const;

  /// Total order: NULL < INT/DOUBLE (numeric order, cross-comparable) <
  /// STRING (lexicographic). Gives deterministic sorts in table views.
  bool operator<(const Value& o) const;
  bool operator==(const Value& o) const;
  bool operator!=(const Value& o) const { return !(*this == o); }

  /// Stable hash consistent with operator== (NULL hashes to a constant;
  /// int/double hash via their numeric text so 3 == 3.0 hash alike).
  uint64_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

}  // namespace banks

#endif  // BANKS_STORAGE_VALUE_H_
