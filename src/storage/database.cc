#include "storage/database.h"

#include <algorithm>

namespace banks {

Status Database::CreateTable(TableSchema schema) {
  Status s = schema.Validate();
  if (!s.ok()) return s;
  if (table_ids_.count(schema.name())) {
    return Status::AlreadyExists("table '" + schema.name() +
                                 "' already exists");
  }
  uint32_t id = static_cast<uint32_t>(tables_.size());
  table_ids_.emplace(schema.name(), id);
  tables_.push_back(std::make_unique<Table>(id, std::move(schema)));
  return Status::OK();
}

Status Database::AddForeignKey(ForeignKey fk) {
  const Table* from = table(fk.table);
  if (from == nullptr) {
    return Status::NotFound("FK '" + fk.name + "': unknown table '" +
                            fk.table + "'");
  }
  const Table* to = table(fk.ref_table);
  if (to == nullptr) {
    return Status::NotFound("FK '" + fk.name + "': unknown table '" +
                            fk.ref_table + "'");
  }
  if (fk.columns.empty() || fk.columns.size() != fk.ref_columns.size()) {
    return Status::InvalidArgument("FK '" + fk.name +
                                   "': column list mismatch");
  }
  for (const auto& c : fk.columns) {
    if (!from->schema().ColumnIndex(c).has_value()) {
      return Status::InvalidArgument("FK '" + fk.name + "': table '" +
                                     fk.table + "' has no column '" + c +
                                     "'");
    }
  }
  // Referenced columns must be exactly the referenced table's PK.
  const auto& pk = to->schema().primary_key();
  if (pk.size() != fk.ref_columns.size()) {
    return Status::InvalidArgument(
        "FK '" + fk.name + "': referenced columns are not the PK of '" +
        fk.ref_table + "'");
  }
  for (size_t i = 0; i < pk.size(); ++i) {
    if (to->schema().columns()[pk[i]].name != fk.ref_columns[i]) {
      return Status::InvalidArgument(
          "FK '" + fk.name + "': referenced columns must match the PK of '" +
          fk.ref_table + "' in order");
    }
  }
  for (const auto& existing : fks_) {
    if (existing.name == fk.name) {
      return Status::AlreadyExists("FK '" + fk.name + "' already exists");
    }
  }
  fks_.push_back(std::move(fk));
  reverse_ready_ = false;
  return Status::OK();
}

Status Database::AddInclusionDependency(InclusionDependency ind) {
  const Table* from = table(ind.table);
  if (from == nullptr) {
    return Status::NotFound("IND '" + ind.name + "': unknown table '" +
                            ind.table + "'");
  }
  const Table* to = table(ind.ref_table);
  if (to == nullptr) {
    return Status::NotFound("IND '" + ind.name + "': unknown table '" +
                            ind.ref_table + "'");
  }
  if (!from->schema().ColumnIndex(ind.column).has_value()) {
    return Status::InvalidArgument("IND '" + ind.name + "': table '" +
                                   ind.table + "' has no column '" +
                                   ind.column + "'");
  }
  if (!to->schema().ColumnIndex(ind.ref_column).has_value()) {
    return Status::InvalidArgument("IND '" + ind.name + "': table '" +
                                   ind.ref_table + "' has no column '" +
                                   ind.ref_column + "'");
  }
  for (const auto& existing : inds_) {
    if (existing.name == ind.name) {
      return Status::AlreadyExists("IND '" + ind.name + "' already exists");
    }
  }
  inds_.push_back(std::move(ind));
  inclusion_index_.clear();
  return Status::OK();
}

std::vector<Rid> Database::ResolveInclusion(const InclusionDependency& ind,
                                            Rid from) const {
  std::vector<Rid> out;
  const Table* from_table = table(ind.table);
  const Table* to_table = table(ind.ref_table);
  if (from_table == nullptr || to_table == nullptr) return out;
  if (from.table_id != from_table->id() || from.row >= from_table->num_rows())
    return out;
  auto col = from_table->schema().ColumnIndex(ind.column);
  auto ref_col = to_table->schema().ColumnIndex(ind.ref_column);
  if (!col.has_value() || !ref_col.has_value()) return out;

  const Value& v = from_table->row(from.row).at(*col);
  if (v.is_null()) return out;

  // Lazily build the value index for this dependency (live rows only).
  auto& index = inclusion_index_[ind.name];
  if (index.empty()) {
    for (uint32_t r = 0; r < to_table->num_rows(); ++r) {
      if (to_table->IsDeleted(r)) continue;
      const Value& rv = to_table->row(r).at(*ref_col);
      if (rv.is_null()) continue;
      index[EncodeValuesKey({rv})].push_back(r);
    }
  }
  auto it = index.find(EncodeValuesKey({v}));
  if (it == index.end()) return out;
  out.reserve(it->second.size());
  for (uint32_t r : it->second) out.push_back(Rid{to_table->id(), r});
  return out;
}

Result<Rid> Database::Insert(const std::string& table_name, Tuple tuple) {
  Table* t = mutable_table(table_name);
  if (t == nullptr) {
    return Status::NotFound("unknown table '" + table_name + "'");
  }
  Result<uint32_t> row = t->Insert(std::move(tuple));
  if (!row.ok()) return row.status();
  reverse_ready_ = false;
  // Inclusion indexes cover the *referred* side only, so an insert merely
  // appends the new row to already-built indexes on its table — no O(rows)
  // rebuild on the ingest path (deletes/updates still invalidate).
  for (const auto& ind : inds_) {
    if (ind.ref_table != table_name) continue;
    auto built = inclusion_index_.find(ind.name);
    if (built == inclusion_index_.end() || built->second.empty()) continue;
    auto ref_col = t->schema().ColumnIndex(ind.ref_column);
    if (!ref_col.has_value()) continue;
    const Value& rv = t->row(row.value()).at(*ref_col);
    if (!rv.is_null()) {
      built->second[EncodeValuesKey({rv})].push_back(row.value());
    }
  }
  return Rid{t->id(), row.value()};
}

Status Database::Delete(Rid rid) {
  Table* t = rid.table_id < tables_.size() ? tables_[rid.table_id].get()
                                           : nullptr;
  if (t == nullptr) {
    return Status::NotFound("no table #" + std::to_string(rid.table_id));
  }
  Status s = t->Delete(rid.row);
  if (!s.ok()) return s;
  reverse_ready_ = false;
  inclusion_index_.clear();
  return Status::OK();
}

bool Database::IsDeleted(Rid rid) const {
  const Table* t = table(rid.table_id);
  return t != nullptr && t->IsDeleted(rid.row);
}

Status Database::UpdateValue(Rid rid, const std::string& column, Value value) {
  Table* t = rid.table_id < tables_.size() ? tables_[rid.table_id].get()
                                           : nullptr;
  if (t == nullptr) {
    return Status::NotFound("no table #" + std::to_string(rid.table_id));
  }
  auto col = t->schema().ColumnIndex(column);
  if (!col.has_value()) {
    return Status::InvalidArgument("table '" + t->name() +
                                   "' has no column '" + column + "'");
  }
  Status s = t->UpdateValue(rid.row, *col, std::move(value));
  if (!s.ok()) return s;
  reverse_ready_ = false;
  inclusion_index_.clear();
  return Status::OK();
}

const Table* Database::table(const std::string& name) const {
  auto it = table_ids_.find(name);
  if (it == table_ids_.end()) return nullptr;
  return tables_[it->second].get();
}

const Table* Database::table(uint32_t id) const {
  if (id >= tables_.size()) return nullptr;
  return tables_[id].get();
}

Table* Database::mutable_table(const std::string& name) {
  auto it = table_ids_.find(name);
  if (it == table_ids_.end()) return nullptr;
  return tables_[it->second].get();
}

std::vector<std::string> Database::table_names() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& t : tables_) names.push_back(t->name());
  return names;
}

std::vector<const ForeignKey*> Database::OutgoingFks(
    const std::string& table) const {
  std::vector<const ForeignKey*> out;
  for (const auto& fk : fks_) {
    if (fk.table == table) out.push_back(&fk);
  }
  return out;
}

std::vector<const ForeignKey*> Database::IncomingFks(
    const std::string& table) const {
  std::vector<const ForeignKey*> in;
  for (const auto& fk : fks_) {
    if (fk.ref_table == table) in.push_back(&fk);
  }
  return in;
}

std::optional<Rid> Database::ResolveFk(const ForeignKey& fk, Rid from) const {
  const Table* from_table = table(fk.table);
  const Table* to_table = table(fk.ref_table);
  if (from_table == nullptr || to_table == nullptr) return std::nullopt;
  if (from.table_id != from_table->id() || from.row >= from_table->num_rows())
    return std::nullopt;
  const Tuple& t = from_table->row(from.row);
  std::vector<Value> key_vals;
  key_vals.reserve(fk.columns.size());
  for (const auto& col : fk.columns) {
    size_t ci = *from_table->schema().ColumnIndex(col);
    const Value& v = t.at(ci);
    if (v.is_null()) return std::nullopt;  // NULL FK: no reference
    key_vals.push_back(v);
  }
  auto row = to_table->LookupPk(key_vals);
  if (!row.has_value()) return std::nullopt;  // dangling
  return Rid{to_table->id(), *row};
}

std::vector<Reference> Database::References(Rid from) const {
  std::vector<Reference> refs;
  const Table* t = table(from.table_id);
  if (t == nullptr) return refs;
  for (const auto& fk : fks_) {
    if (fk.table != t->name()) continue;
    auto to = ResolveFk(fk, from);
    if (to.has_value()) refs.push_back(Reference{fk.name, from, *to});
  }
  return refs;
}

void Database::BuildReverseIndex() const {
  if (reverse_ready_) return;
  reverse_refs_.clear();
  for (uint32_t fi = 0; fi < fks_.size(); ++fi) {
    const ForeignKey& fk = fks_[fi];
    const Table* from_table = table(fk.table);
    if (from_table == nullptr) continue;
    for (uint32_t r = 0; r < from_table->num_rows(); ++r) {
      if (from_table->IsDeleted(r)) continue;
      Rid from{from_table->id(), r};
      auto to = ResolveFk(fk, from);
      if (to.has_value()) {
        reverse_refs_[to->Pack()].emplace_back(fi, from);
      }
    }
  }
  reverse_ready_ = true;
}

std::vector<Reference> Database::ReferencingTuples(Rid to) const {
  BuildReverseIndex();
  std::vector<Reference> refs;
  auto it = reverse_refs_.find(to.Pack());
  if (it == reverse_refs_.end()) return refs;
  refs.reserve(it->second.size());
  for (const auto& [fk_idx, from] : it->second) {
    refs.push_back(Reference{fks_[fk_idx].name, from, to});
  }
  return refs;
}

const Tuple* Database::Get(Rid rid) const {
  const Table* t = table(rid.table_id);
  if (t == nullptr || rid.row >= t->num_rows()) return nullptr;
  return &t->row(rid.row);
}

size_t Database::TotalRows() const {
  size_t n = 0;
  for (const auto& t : tables_) n += t->num_rows();
  return n;
}

}  // namespace banks
