// Tuples: one row of typed values plus key-encoding helpers.
#ifndef BANKS_STORAGE_TUPLE_H_
#define BANKS_STORAGE_TUPLE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "storage/value.h"

namespace banks {

/// A row: positional values matching a TableSchema's columns.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }
  Value& at(size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  bool operator==(const Tuple& o) const { return values_ == o.values_; }

  /// Encodes the values at `cols` as a single opaque key string. Used for
  /// PK hash indexes and FK lookups. The 0x1f separator cannot appear in
  /// numeric text; string values have 0x1f escaped so keys are unambiguous.
  std::string EncodeKey(const std::vector<size_t>& cols) const;

  /// Human-readable "(v1, v2, ...)" form for logs and tests.
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

/// Builds the key encoding for a list of already-extracted values.
std::string EncodeValuesKey(const std::vector<Value>& vals);

}  // namespace banks

#endif  // BANKS_STORAGE_TUPLE_H_
