#include "storage/value.h"

#include <cmath>
#include <cstdio>

#include "util/hash.h"

namespace banks {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt: return "INT";
    case ValueType::kDouble: return "DOUBLE";
    case ValueType::kString: return "STRING";
  }
  return "?";
}

std::string Value::ToText() const {
  switch (type()) {
    case ValueType::kNull:
      return "";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      char buf[32];
      double d = AsDouble();
      if (d == std::floor(d) && std::abs(d) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.1f", d);
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", d);
      }
      return buf;
    }
    case ValueType::kString:
      return AsString();
  }
  return "";
}

namespace {

// Numeric view; only valid for INT/DOUBLE.
double AsNumber(const Value& v) {
  return v.type() == ValueType::kInt ? static_cast<double>(v.AsInt())
                                     : v.AsDouble();
}

bool IsNumeric(const Value& v) {
  return v.type() == ValueType::kInt || v.type() == ValueType::kDouble;
}

}  // namespace

bool Value::operator<(const Value& o) const {
  // NULL sorts first.
  if (is_null() || o.is_null()) return is_null() && !o.is_null();
  const bool a_num = IsNumeric(*this), b_num = IsNumeric(o);
  if (a_num && b_num) return AsNumber(*this) < AsNumber(o);
  if (a_num != b_num) return a_num;  // numbers sort before strings
  return AsString() < o.AsString();
}

bool Value::operator==(const Value& o) const {
  if (is_null() || o.is_null()) return is_null() == o.is_null();
  const bool a_num = IsNumeric(*this), b_num = IsNumeric(o);
  if (a_num && b_num) return AsNumber(*this) == AsNumber(o);
  if (a_num != b_num) return false;
  return AsString() == o.AsString();
}

uint64_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9b1a2c3d4e5f6071ULL;
    case ValueType::kInt:
    case ValueType::kDouble: {
      double d = AsNumber(*this);
      if (d == 0.0) d = 0.0;  // canonicalise -0.0
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      uint64_t h = 0x517cc1b727220a95ULL;
      HashCombine(&h, bits);
      return h;
    }
    case ValueType::kString:
      return Fnv1a(AsString());
  }
  return 0;
}

}  // namespace banks
