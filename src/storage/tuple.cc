#include "storage/tuple.h"

namespace banks {

namespace {

void AppendEscaped(const std::string& text, std::string* out) {
  for (char c : text) {
    if (c == '\x1f' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

}  // namespace

std::string EncodeValuesKey(const std::vector<Value>& vals) {
  std::string key;
  for (size_t i = 0; i < vals.size(); ++i) {
    if (i) key.push_back('\x1f');
    // Prefix with a type tag so NULL, 0 and "" stay distinct.
    switch (vals[i].type()) {
      case ValueType::kNull: key.push_back('n'); break;
      case ValueType::kInt:
      case ValueType::kDouble: key.push_back('#'); break;
      case ValueType::kString: key.push_back('s'); break;
    }
    AppendEscaped(vals[i].ToText(), &key);
  }
  return key;
}

std::string Tuple::EncodeKey(const std::vector<size_t>& cols) const {
  std::vector<Value> vals;
  vals.reserve(cols.size());
  for (size_t c : cols) vals.push_back(values_[c]);
  return EncodeValuesKey(vals);
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i) out += ", ";
    if (values_[i].type() == ValueType::kString) {
      out += "'" + values_[i].ToText() + "'";
    } else if (values_[i].is_null()) {
      out += "NULL";
    } else {
      out += values_[i].ToText();
    }
  }
  out += ")";
  return out;
}

}  // namespace banks
