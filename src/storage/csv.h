// CSV persistence for databases.
//
// A database round-trips to a directory: `catalog.txt` describes schemas and
// foreign keys; each table serialises to `<table>.csv` (RFC-4180-style
// quoting). This is how synthetic datasets are checked in/out and how a user
// would load their own data (e.g. a real DBLP extract) into BANKS.
#ifndef BANKS_STORAGE_CSV_H_
#define BANKS_STORAGE_CSV_H_

#include <string>
#include <vector>

#include "storage/database.h"
#include "util/status.h"

namespace banks {

/// Parses one CSV line into fields (handles quotes and embedded commas).
std::vector<std::string> ParseCsvLine(const std::string& line);

/// Escapes a field for CSV output.
std::string CsvEscape(const std::string& field);

/// Writes `db` to `dir` (created if missing): catalog.txt + one CSV/table.
Status SaveDatabase(const Database& db, const std::string& dir);

/// Reads a database previously written by SaveDatabase.
Result<Database> LoadDatabase(const std::string& dir);

}  // namespace banks

#endif  // BANKS_STORAGE_CSV_H_
