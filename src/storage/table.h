// Row-store table with a primary-key hash index.
#ifndef BANKS_STORAGE_TABLE_H_
#define BANKS_STORAGE_TABLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/schema.h"
#include "storage/tuple.h"
#include "util/status.h"

namespace banks {

/// An in-memory relation: schema + append-only rows + PK index.
///
/// Rows are addressed by dense index (the `row` half of a Rid). BANKS never
/// updates or deletes tuples during search, so the store is append-only; the
/// browsing layer reads rows by index and the graph builder scans them once.
class Table {
 public:
  Table(uint32_t id, TableSchema schema)
      : id_(id), schema_(std::move(schema)) {}

  uint32_t id() const { return id_; }
  const TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name(); }

  size_t num_rows() const { return rows_.size(); }
  const Tuple& row(size_t i) const { return rows_[i]; }
  const std::vector<Tuple>& rows() const { return rows_; }

  /// Appends a tuple. Fails on arity mismatch, type mismatch (NULL is
  /// allowed in any column), or duplicate primary key. On success returns
  /// the new row index.
  Result<uint32_t> Insert(Tuple tuple);

  /// Looks up a row by primary-key values (in PK column order).
  std::optional<uint32_t> LookupPk(const std::vector<Value>& pk_values) const;

  /// Looks up by a pre-encoded PK key (see Tuple::EncodeKey).
  std::optional<uint32_t> LookupPkKey(const std::string& key) const;

 private:
  uint32_t id_;
  TableSchema schema_;
  std::vector<Tuple> rows_;
  std::unordered_map<std::string, uint32_t> pk_index_;
};

}  // namespace banks

#endif  // BANKS_STORAGE_TABLE_H_
