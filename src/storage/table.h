// Row-store table with a primary-key hash index.
#ifndef BANKS_STORAGE_TABLE_H_
#define BANKS_STORAGE_TABLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/schema.h"
#include "storage/tuple.h"
#include "util/status.h"

namespace banks {

/// An in-memory relation: schema + append-only rows + PK index.
///
/// Rows are addressed by dense index (the `row` half of a Rid), so row slots
/// are never reused: Delete marks a tombstone (the PK is released, the data
/// stays readable so graph snapshots frozen before the delete still render),
/// and Insert always appends. The update/ subsystem records the live/dead
/// transition; a refreeze rebuilds the derived structures over live rows.
class Table {
 public:
  Table(uint32_t id, TableSchema schema)
      : id_(id), schema_(std::move(schema)) {}

  uint32_t id() const { return id_; }
  const TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name(); }

  /// Row slots ever allocated, tombstoned ones included.
  size_t num_rows() const { return rows_.size(); }
  /// Rows not tombstoned (what a refreeze materialises).
  size_t num_live_rows() const { return rows_.size() - num_deleted_; }
  const Tuple& row(size_t i) const { return rows_[i]; }
  const std::vector<Tuple>& rows() const { return rows_; }

  /// Appends a tuple. Fails on arity mismatch, type mismatch (NULL is
  /// allowed in any column), or duplicate primary key. On success returns
  /// the new row index.
  Result<uint32_t> Insert(Tuple tuple);

  /// Tombstones a row: its PK entry is released (a later Insert may reuse
  /// the key) but the slot keeps its data so pre-delete snapshots render.
  Status Delete(uint32_t row);
  bool IsDeleted(uint32_t row) const {
    return row < deleted_.size() && deleted_[row];
  }

  /// Overwrites one column value in place. PK columns cannot be updated
  /// (delete + insert instead — the Rid identity would change anyway).
  Status UpdateValue(uint32_t row, size_t column, Value value);

  /// Looks up a row by primary-key values (in PK column order).
  std::optional<uint32_t> LookupPk(const std::vector<Value>& pk_values) const;

  /// Looks up by a pre-encoded PK key (see Tuple::EncodeKey).
  std::optional<uint32_t> LookupPkKey(const std::string& key) const;

 private:
  uint32_t id_;
  TableSchema schema_;
  std::vector<Tuple> rows_;
  std::vector<bool> deleted_;  // lazily grown; empty = nothing deleted
  size_t num_deleted_ = 0;
  std::unordered_map<std::string, uint32_t> pk_index_;
};

}  // namespace banks

#endif  // BANKS_STORAGE_TABLE_H_
