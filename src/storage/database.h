// The database catalog: tables, foreign keys, and reference resolution.
//
// This is the substrate that replaces the paper's IBM Universal Database:
// BANKS needs (a) tuples addressable by RID, (b) the FK metadata that
// induces graph edges, and (c) value access for keyword indexing and
// result rendering. All three live here.
#ifndef BANKS_STORAGE_DATABASE_H_
#define BANKS_STORAGE_DATABASE_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/rid.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "util/status.h"

namespace banks {

/// A resolved FK reference from one tuple to another.
struct Reference {
  std::string fk_name;
  Rid from;
  Rid to;
};

/// An in-memory relational database with referential metadata.
class Database {
 public:
  Database() = default;

  // Non-copyable (tables can be large); movable.
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Creates a table. Fails if the schema is invalid or the name is taken.
  Status CreateTable(TableSchema schema);

  /// Registers a foreign key. The referenced columns must be the referenced
  /// table's primary key (classic FK->PK references, as in the paper).
  Status AddForeignKey(ForeignKey fk);

  /// Registers an inclusion dependency (§2.1 model extension): the referred
  /// column need not be a key, so a value may match several referred rows.
  Status AddInclusionDependency(InclusionDependency ind);

  const std::vector<InclusionDependency>& inclusion_dependencies() const {
    return inds_;
  }

  /// All referred rows a tuple links to through one inclusion dependency
  /// (empty when the value is NULL or unmatched).
  std::vector<Rid> ResolveInclusion(const InclusionDependency& ind,
                                    Rid from) const;

  /// Inserts a row; returns its Rid.
  Result<Rid> Insert(const std::string& table, Tuple tuple);

  /// Tombstones a row (see Table::Delete): the slot keeps its data so
  /// graph snapshots frozen before the delete still render, but the tuple
  /// stops resolving as an FK target and a refreeze drops it.
  Status Delete(Rid rid);

  /// True if `rid` names a tombstoned row.
  bool IsDeleted(Rid rid) const;

  /// Overwrites one column of a live row (PK columns are rejected).
  Status UpdateValue(Rid rid, const std::string& column, Value value);

  size_t num_tables() const { return tables_.size(); }
  const Table* table(const std::string& name) const;
  const Table* table(uint32_t id) const;
  Table* mutable_table(const std::string& name);
  std::vector<std::string> table_names() const;

  const std::vector<ForeignKey>& foreign_keys() const { return fks_; }

  /// Foreign keys whose referencing table is `table`.
  std::vector<const ForeignKey*> OutgoingFks(const std::string& table) const;
  /// Foreign keys that reference `table`.
  std::vector<const ForeignKey*> IncomingFks(const std::string& table) const;

  /// The tuple a given row references through `fk` (nullopt if any FK column
  /// is NULL or the referenced row does not exist — dangling reference).
  std::optional<Rid> ResolveFk(const ForeignKey& fk, Rid from) const;

  /// All outgoing references of a tuple across every FK of its table.
  std::vector<Reference> References(Rid from) const;

  /// All tuples referencing `to` (reverse lookup; used by backward browsing
  /// and by the graph builder for backward edges). Grouped by FK.
  std::vector<Reference> ReferencingTuples(Rid to) const;

  /// Fetches a tuple by Rid; nullptr if out of range.
  const Tuple* Get(Rid rid) const;

  /// Total tuples across all tables (graph node count).
  size_t TotalRows() const;

  /// Builds reverse-reference indexes. Called automatically by the
  /// functions that need them; invalidated by further inserts.
  void BuildReverseIndex() const;

 private:
  std::vector<std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, uint32_t> table_ids_;
  std::vector<ForeignKey> fks_;
  std::vector<InclusionDependency> inds_;

  // Lazily built per inclusion dependency: value key -> referred rows.
  mutable std::unordered_map<std::string,
                             std::unordered_map<std::string,
                                                std::vector<uint32_t>>>
      inclusion_index_;

  // Lazily built: for each table, packed Rid -> list of (fk idx, from Rid).
  mutable bool reverse_ready_ = false;
  mutable std::unordered_map<uint64_t, std::vector<std::pair<uint32_t, Rid>>>
      reverse_refs_;
};

}  // namespace banks

#endif  // BANKS_STORAGE_DATABASE_H_
