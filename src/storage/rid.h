// Row identifiers.
//
// BANKS keeps the whole database *graph* in memory but stores only RIDs in
// graph nodes (§3 of the paper); attribute values are fetched from the
// storage layer on demand. A Rid names a row as (table id, row index).
#ifndef BANKS_STORAGE_RID_H_
#define BANKS_STORAGE_RID_H_

#include <cstdint>
#include <functional>
#include <string>

namespace banks {

/// Identifies one tuple: which table, and which row slot inside it.
struct Rid {
  uint32_t table_id = 0;
  uint32_t row = 0;

  bool operator==(const Rid& o) const {
    return table_id == o.table_id && row == o.row;
  }
  bool operator!=(const Rid& o) const { return !(*this == o); }
  bool operator<(const Rid& o) const {
    return table_id != o.table_id ? table_id < o.table_id : row < o.row;
  }

  /// Packs to a single 64-bit key for hash maps and index files.
  uint64_t Pack() const {
    return (static_cast<uint64_t>(table_id) << 32) | row;
  }
  static Rid Unpack(uint64_t packed) {
    return Rid{static_cast<uint32_t>(packed >> 32),
               static_cast<uint32_t>(packed & 0xffffffffULL)};
  }

  std::string ToString() const {
    return std::to_string(table_id) + ":" + std::to_string(row);
  }
};

struct RidHash {
  size_t operator()(const Rid& r) const {
    return std::hash<uint64_t>()(r.Pack());
  }
};

}  // namespace banks

#endif  // BANKS_STORAGE_RID_H_
