#include "storage/table.h"

#include <utility>

namespace banks {

Result<uint32_t> Table::Insert(Tuple tuple) {
  if (tuple.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "table '" + name() + "': expected " +
        std::to_string(schema_.num_columns()) + " values, got " +
        std::to_string(tuple.size()));
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    const Value& v = tuple.at(i);
    if (v.is_null()) continue;
    if (v.type() != schema_.columns()[i].type) {
      return Status::InvalidArgument(
          "table '" + name() + "' column '" + schema_.columns()[i].name +
          "': expected " + ValueTypeName(schema_.columns()[i].type) +
          ", got " + ValueTypeName(v.type()));
    }
  }
  std::string pk_key;
  if (schema_.has_primary_key()) {
    pk_key = tuple.EncodeKey(schema_.primary_key());
    if (pk_index_.count(pk_key)) {
      return Status::AlreadyExists("table '" + name() +
                                   "': duplicate primary key " + pk_key);
    }
  }
  uint32_t row = static_cast<uint32_t>(rows_.size());
  rows_.push_back(std::move(tuple));
  if (schema_.has_primary_key()) pk_index_.emplace(std::move(pk_key), row);
  return row;
}

Status Table::Delete(uint32_t row) {
  if (row >= rows_.size()) {
    return Status::NotFound("table '" + name() + "': no row " +
                            std::to_string(row));
  }
  if (IsDeleted(row)) {
    return Status::NotFound("table '" + name() + "': row " +
                            std::to_string(row) + " already deleted");
  }
  if (deleted_.size() < rows_.size()) deleted_.resize(rows_.size(), false);
  deleted_[row] = true;
  ++num_deleted_;
  if (schema_.has_primary_key()) {
    pk_index_.erase(rows_[row].EncodeKey(schema_.primary_key()));
  }
  return Status::OK();
}

Status Table::UpdateValue(uint32_t row, size_t column, Value value) {
  if (row >= rows_.size() || IsDeleted(row)) {
    return Status::NotFound("table '" + name() + "': no live row " +
                            std::to_string(row));
  }
  if (column >= schema_.num_columns()) {
    return Status::InvalidArgument("table '" + name() + "': no column #" +
                                   std::to_string(column));
  }
  for (size_t pk_col : schema_.primary_key()) {
    if (pk_col == column) {
      return Status::InvalidArgument(
          "table '" + name() + "': cannot update primary-key column '" +
          schema_.columns()[column].name + "'");
    }
  }
  if (!value.is_null() && value.type() != schema_.columns()[column].type) {
    return Status::InvalidArgument(
        "table '" + name() + "' column '" + schema_.columns()[column].name +
        "': expected " + ValueTypeName(schema_.columns()[column].type) +
        ", got " + ValueTypeName(value.type()));
  }
  rows_[row].at(column) = std::move(value);
  return Status::OK();
}

std::optional<uint32_t> Table::LookupPk(
    const std::vector<Value>& pk_values) const {
  return LookupPkKey(EncodeValuesKey(pk_values));
}

std::optional<uint32_t> Table::LookupPkKey(const std::string& key) const {
  auto it = pk_index_.find(key);
  if (it == pk_index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace banks
