#include "storage/table.h"

namespace banks {

Result<uint32_t> Table::Insert(Tuple tuple) {
  if (tuple.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "table '" + name() + "': expected " +
        std::to_string(schema_.num_columns()) + " values, got " +
        std::to_string(tuple.size()));
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    const Value& v = tuple.at(i);
    if (v.is_null()) continue;
    if (v.type() != schema_.columns()[i].type) {
      return Status::InvalidArgument(
          "table '" + name() + "' column '" + schema_.columns()[i].name +
          "': expected " + ValueTypeName(schema_.columns()[i].type) +
          ", got " + ValueTypeName(v.type()));
    }
  }
  std::string pk_key;
  if (schema_.has_primary_key()) {
    pk_key = tuple.EncodeKey(schema_.primary_key());
    if (pk_index_.count(pk_key)) {
      return Status::AlreadyExists("table '" + name() +
                                   "': duplicate primary key " + pk_key);
    }
  }
  uint32_t row = static_cast<uint32_t>(rows_.size());
  rows_.push_back(std::move(tuple));
  if (schema_.has_primary_key()) pk_index_.emplace(std::move(pk_key), row);
  return row;
}

std::optional<uint32_t> Table::LookupPk(
    const std::vector<Value>& pk_values) const {
  return LookupPkKey(EncodeValuesKey(pk_values));
}

std::optional<uint32_t> Table::LookupPkKey(const std::string& key) const {
  auto it = pk_index_.find(key);
  if (it == pk_index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace banks
