#include "storage/schema.h"

#include <unordered_set>

namespace banks {

TableSchema::TableSchema(std::string name, std::vector<ColumnDef> columns,
                         std::vector<std::string> primary_key)
    : name_(std::move(name)), columns_(std::move(columns)) {
  for (const auto& pk : primary_key) {
    auto idx = ColumnIndex(pk);
    // Unknown PK columns are recorded as missing; Validate() reports them.
    if (idx.has_value()) pk_cols_.push_back(*idx);
  }
  pk_requested_ = primary_key.size();
}

std::optional<size_t> TableSchema::ColumnIndex(
    const std::string& column) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == column) return i;
  }
  return std::nullopt;
}

Status TableSchema::Validate() const {
  if (name_.empty()) return Status::InvalidArgument("table name empty");
  if (columns_.empty()) {
    return Status::InvalidArgument("table '" + name_ + "' has no columns");
  }
  std::unordered_set<std::string> seen;
  for (const auto& c : columns_) {
    if (c.name.empty()) {
      return Status::InvalidArgument("table '" + name_ +
                                     "' has an unnamed column");
    }
    if (!seen.insert(c.name).second) {
      return Status::InvalidArgument("table '" + name_ +
                                     "' duplicates column '" + c.name + "'");
    }
  }
  if (pk_cols_.size() != pk_requested_) {
    return Status::InvalidArgument(
        "table '" + name_ + "' primary key names a non-existent column");
  }
  return Status::OK();
}

}  // namespace banks
