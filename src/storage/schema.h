// Table schemas, primary keys and foreign keys.
//
// The BANKS graph is *induced by the schema*: every foreign-key -> primary-key
// reference becomes a pair of directed edges (§2.2). The catalog therefore
// carries full referential metadata, which the GraphBuilder and the browsing
// layer (automatic hyperlinks, FK joins) both consume.
#ifndef BANKS_STORAGE_SCHEMA_H_
#define BANKS_STORAGE_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "storage/value.h"
#include "util/status.h"

namespace banks {

/// One column: name, declared type, and whether it is part of the PK.
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kString;

  ColumnDef() = default;
  ColumnDef(std::string n, ValueType t) : name(std::move(n)), type(t) {}
};

/// Schema of one relation.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<ColumnDef> columns,
              std::vector<std::string> primary_key);

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }

  /// Index of `column` or nullopt.
  std::optional<size_t> ColumnIndex(const std::string& column) const;

  /// Column indexes of the primary key (possibly empty = no PK).
  const std::vector<size_t>& primary_key() const { return pk_cols_; }
  bool has_primary_key() const { return !pk_cols_.empty(); }

  /// Validates that names are unique and the PK refers to real columns.
  Status Validate() const;

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
  std::vector<size_t> pk_cols_;
  size_t pk_requested_ = 0;  ///< #PK names passed in (for validation)
};

/// A foreign key: `table.columns` references `ref_table.ref_columns`
/// (the referenced columns must be the referenced table's primary key).
struct ForeignKey {
  std::string name;                     ///< unique constraint name
  std::string table;                    ///< referencing relation
  std::vector<std::string> columns;     ///< referencing columns
  std::string ref_table;                ///< referenced relation
  std::vector<std::string> ref_columns; ///< referenced (PK) columns
};

/// An inclusion dependency (§2.1): values of `table.column` are contained
/// in `ref_table.ref_column`, but the referred column need not be a key —
/// one referencing tuple may link to *several* referred tuples. The graph
/// builder turns each value match into a link, exactly like an FK link.
struct InclusionDependency {
  std::string name;
  std::string table;       ///< referencing relation
  std::string column;      ///< referencing column
  std::string ref_table;   ///< referred relation
  std::string ref_column;  ///< referred column (any column)
};

}  // namespace banks

#endif  // BANKS_STORAGE_SCHEMA_H_
