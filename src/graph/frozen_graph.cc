#include "graph/frozen_graph.h"

#include <algorithm>
#include <cassert>

namespace banks {

FrozenGraph::FrozenGraph(const Graph& g) {
  const size_t n = g.num_nodes();
  node_weight_.resize(n);
  out_offsets_.assign(n + 1, 0);
  in_offsets_.assign(n + 1, 0);
  out_edges_.reserve(g.num_edges());
  in_edges_.reserve(g.num_edges());

  for (NodeId v = 0; v < n; ++v) {
    node_weight_[v] = g.node_weight(v);
    max_node_weight_ = std::max(max_node_weight_, node_weight_[v]);
    for (const auto& e : g.OutEdges(v)) {
      out_edges_.push_back(e);
      min_edge_weight_ = std::min(min_edge_weight_, e.weight);
    }
    out_offsets_[v + 1] = static_cast<uint32_t>(out_edges_.size());
    for (const auto& e : g.InEdges(v)) in_edges_.push_back(e);
    in_offsets_[v + 1] = static_cast<uint32_t>(in_edges_.size());
  }
  assert(out_edges_.size() == in_edges_.size());
}

FrozenGraph::FrozenGraph(std::vector<uint32_t> out_offsets,
                         std::vector<GraphEdge> out_edges,
                         std::vector<uint32_t> in_offsets,
                         std::vector<GraphEdge> in_edges,
                         std::vector<double> node_weights)
    : out_offsets_(std::move(out_offsets)),
      in_offsets_(std::move(in_offsets)),
      out_edges_(std::move(out_edges)),
      in_edges_(std::move(in_edges)),
      node_weight_(std::move(node_weights)) {
  assert(out_offsets_.size() == node_weight_.size() + 1);
  assert(in_offsets_.size() == node_weight_.size() + 1);
  assert(out_edges_.size() == in_edges_.size());
  max_node_weight_ = MaxNodeWeightOf(node_weight_);
  for (const auto& e : out_edges_) {
    min_edge_weight_ = std::min(min_edge_weight_, e.weight);
  }
}

FrozenGraph::FrozenGraph(std::span<const uint32_t> out_offsets,
                         EdgeSpan out_edges,
                         std::span<const uint32_t> in_offsets,
                         EdgeSpan in_edges, std::span<const double> node_weights,
                         double max_node_weight, double min_edge_weight,
                         std::shared_ptr<const void> arena)
    : v_out_offsets_(out_offsets),
      v_in_offsets_(in_offsets),
      v_out_edges_(out_edges),
      v_in_edges_(in_edges),
      v_node_weight_(node_weights),
      arena_(std::move(arena)),
      max_node_weight_(max_node_weight),
      min_edge_weight_(min_edge_weight) {
  assert(arena_ != nullptr);
  assert(v_out_offsets_.size() == v_node_weight_.size() + 1);
  assert(v_in_offsets_.size() == v_node_weight_.size() + 1);
  assert(v_out_edges_.size() == v_in_edges_.size());
  // The default-constructed offsets sentinels would shadow the views
  // (accessors prefer owned storage when non-empty).
  out_offsets_.clear();
  in_offsets_.clear();
}

void FrozenGraph::DetachWeights() {
  if (!arena_ || !node_weight_.empty() || v_node_weight_.empty()) return;
  node_weight_.assign(v_node_weight_.begin(), v_node_weight_.end());
  v_node_weight_ = {};
}

void FrozenGraph::set_node_weight(NodeId n, double w) {
  DetachWeights();
  const double old = node_weight_[n];
  node_weight_[n] = w;
  if (w >= max_node_weight_) {
    max_node_weight_ = w;
  } else if (old == max_node_weight_) {
    // The previous maximum may have been lowered; recompute exactly.
    max_node_weight_ = MaxNodeWeightOf(node_weight_);
  }
}

void FrozenGraph::SetNodeWeights(const std::vector<double>& weights) {
  DetachWeights();
  const size_t n = std::min(weights.size(), node_weight_.size());
  for (size_t i = 0; i < n; ++i) node_weight_[i] = weights[i];
  max_node_weight_ = MaxNodeWeightOf(node_weight_);
}

double FrozenGraph::EdgeWeight(NodeId u, NodeId v) const {
  for (const auto& e : OutEdges(u)) {
    if (e.to == v) return e.weight;
  }
  return std::numeric_limits<double>::infinity();
}

bool FrozenGraph::HasEdge(NodeId u, NodeId v) const {
  for (const auto& e : OutEdges(u)) {
    if (e.to == v) return true;
  }
  return false;
}

size_t FrozenGraph::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  bytes += node_weight_.capacity() * sizeof(double);
  bytes += out_offsets_.capacity() * sizeof(uint32_t);
  bytes += in_offsets_.capacity() * sizeof(uint32_t);
  bytes += out_edges_.capacity() * sizeof(GraphEdge);
  bytes += in_edges_.capacity() * sizeof(GraphEdge);
  if (arena_) {
    bytes += v_node_weight_.size_bytes() + v_out_offsets_.size_bytes() +
             v_in_offsets_.size_bytes() + v_out_edges_.size_bytes() +
             v_in_edges_.size_bytes();
  }
  return bytes;
}

}  // namespace banks
