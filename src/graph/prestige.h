// Node prestige measures.
//
// The paper's implementation sets prestige = indegree and notes that
// "extensions to handle transfer of prestige (as is done, e.g., in Google's
// PageRank) can be easily added to the model" — both are provided here.
#ifndef BANKS_GRAPH_PRESTIGE_H_
#define BANKS_GRAPH_PRESTIGE_H_

#include <vector>

#include "graph/frozen_graph.h"

namespace banks {

/// Prestige = indegree of each node (counting all in-edges, which in the
/// BANKS graph means forward in-links plus backward in-links; for the
/// paper's model, set `forward_only` using the builder's indegree instead).
std::vector<double> IndegreePrestige(const FrozenGraph& g);

/// PageRank-style prestige transfer over the directed graph (§7 "authority
/// transfer ... wherein nodes pointed to by heavy nodes become heavier").
/// Standard power iteration with uniform teleport.
struct PageRankOptions {
  double damping = 0.85;
  int max_iterations = 50;
  double tolerance = 1e-9;  ///< L1 convergence threshold
};
std::vector<double> PageRankPrestige(const FrozenGraph& g,
                                     const PageRankOptions& options = {});

/// Overwrites a graph's node weights with the given prestige vector.
void ApplyPrestige(FrozenGraph* g, const std::vector<double>& prestige);

}  // namespace banks

#endif  // BANKS_GRAPH_PRESTIGE_H_
