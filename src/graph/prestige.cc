#include "graph/prestige.h"

#include <cmath>

namespace banks {

std::vector<double> IndegreePrestige(const FrozenGraph& g) {
  std::vector<double> prestige(g.num_nodes(), 0.0);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    prestige[n] = static_cast<double>(g.InDegree(n));
  }
  return prestige;
}

std::vector<double> PageRankPrestige(const FrozenGraph& g,
                                     const PageRankOptions& options) {
  const size_t n = g.num_nodes();
  if (n == 0) return {};
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    double dangling = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      if (g.OutEdges(u).empty()) dangling += rank[u];
    }
    const double base =
        (1.0 - options.damping) / static_cast<double>(n) +
        options.damping * dangling / static_cast<double>(n);
    std::fill(next.begin(), next.end(), base);
    for (NodeId u = 0; u < n; ++u) {
      const auto& out = g.OutEdges(u);
      if (out.empty()) continue;
      double share = options.damping * rank[u] / static_cast<double>(out.size());
      for (const auto& e : out) next[e.to] += share;
    }
    double delta = 0.0;
    for (size_t i = 0; i < n; ++i) delta += std::abs(next[i] - rank[i]);
    rank.swap(next);
    if (delta < options.tolerance) break;
  }
  return rank;
}

void ApplyPrestige(FrozenGraph* g, const std::vector<double>& prestige) {
  // Bulk assignment: one max recompute instead of a rescan per lowered
  // maximum (uniform-weight graphs would otherwise go quadratic).
  g->SetNodeWeights(prestige);
}

}  // namespace banks
