// O(base + delta) CSR splice — the merge-refreeze fast path for stage B.
//
// MaterializeDataGraph re-folds every §2.2 pair weight and re-emits every
// edge from the link list: correct, but linear in the graph with heavy
// per-link work (hash folds, per-pair combines). After a small mutation
// burst almost all of that reproduces the old CSR verbatim, so the splice
// computes the SAME graph — byte-identical arrays, enforced by the
// equivalence oracle and property tests — by
//   - enumerating the compacted NodeId space and remapping the old ids
//     (deletes compact, inserts append; monotone two-pointer pass);
//   - patching the cached per-(node, relation) indegree counts with the
//     removed/added link deltas, instead of recounting;
//   - re-materialising ONLY the delta-bound "touched" nodes — endpoints
//     of removed/added links, inserted rows, and the partner fan of nodes
//     whose per-relation indegree changed (their backward-edge weights
//     derive from those counts) — from their incident links, with exactly
//     the fold/emission order MaterializeDataGraph uses;
//   - copying every untouched node's adjacency span with NodeIds remapped
//     and weights bit-identical.
// The remaining whole-graph work is memcpy-grade (span copies, id remaps,
// invariant scans); everything per-link-expensive is delta-bound.
#ifndef BANKS_GRAPH_GRAPH_SPLICE_H_
#define BANKS_GRAPH_GRAPH_SPLICE_H_

#include <cstdint>
#include <vector>

#include "graph/graph_builder.h"

namespace banks {

/// The link-level difference between the old epoch's table and the merged
/// one, in Rid space. Deleted rows are implicit: old nodes whose row is
/// tombstoned in the database vanish from the new enumeration.
struct GraphSpliceDelta {
  std::vector<ResolvedLink> removed;  ///< old links dropped by the merge
  std::vector<ResolvedLink> added;    ///< links (re-)resolved this epoch
  std::vector<Rid> inserted;          ///< rows born this epoch (live ones)
};

/// Splices `delta` into `old_dg`, producing a DataGraph byte-identical to
/// MaterializeDataGraph(db, merged_links, options). `merged_links` must be
/// the old table minus `removed` plus `added` (in LinkOrder), and
/// `old_counts` the in_by_relation export of the build that produced
/// `old_dg`. `new_counts` receives the counts of the new graph, keyed by
/// its node ids — the next epoch's `old_counts`.
DataGraph SpliceDataGraph(const Database& db, const DataGraph& old_dg,
                          const std::vector<ResolvedLink>& merged_links,
                          const GraphSpliceDelta& delta,
                          const std::vector<uint32_t>& old_counts,
                          const GraphBuildOptions& options,
                          std::vector<uint32_t>* new_counts);

}  // namespace banks

#endif  // BANKS_GRAPH_GRAPH_SPLICE_H_
