// Materialises the BANKS data graph from a relational database (§2.2).
//
// Every tuple becomes a node; every resolved FK reference u -> v becomes a
// forward edge (weight s(R(u), R(v))) and a backward edge (weight
// proportional to the referenced node's per-relation indegree). Node
// prestige defaults to indegree.
#ifndef BANKS_GRAPH_GRAPH_BUILDER_H_
#define BANKS_GRAPH_GRAPH_BUILDER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/edge_weight.h"
#include "graph/frozen_graph.h"
#include "graph/graph.h"
#include "storage/database.h"

namespace banks {

/// Knobs of the graph model. Defaults reproduce the paper's configuration.
struct GraphBuildOptions {
  /// Per-relation-pair link strengths (paper: Paper–Writes stronger than
  /// Paper–Cites, i.e. Cites gets a larger weight).
  SimilarityMatrix similarity;

  /// Combine rule when both directions carry FK links (eq. 1: min).
  BothLinkCombine both_link_combine = BothLinkCombine::kMin;

  /// Ablation switch: ignore indegree and give backward edges the same
  /// weight as forward ones (demonstrates the hub problem of §2.1).
  bool unit_backward_edges = false;

  /// Node prestige = indegree (paper's implementation). When false, all
  /// node weights are 0 (pure proximity ranking).
  bool indegree_prestige = true;
};

/// The database graph plus the Rid <-> NodeId correspondence. The graph is
/// a frozen CSR snapshot: build mutably via Graph, then assign
/// `dg.graph = FrozenGraph(g)`. Node weights remain assignable (prestige).
struct DataGraph {
  FrozenGraph graph;
  std::vector<Rid> node_rid;                      ///< NodeId -> Rid
  std::unordered_map<uint64_t, NodeId> rid_node;  ///< packed Rid -> NodeId

  /// NodeId for a tuple, or kInvalidNode.
  NodeId NodeForRid(Rid rid) const {
    auto it = rid_node.find(rid.Pack());
    return it == rid_node.end() ? kInvalidNode : it->second;
  }
  Rid RidForNode(NodeId n) const { return node_rid[n]; }

  /// Estimated bytes for the in-memory structures (§5.2 experiment).
  size_t MemoryBytes() const;
};

/// Shared immutable snapshot of one frozen data graph. Concurrent readers
/// (sessions, pool workers) each hold a reference; a future refreeze swaps
/// the engine's snapshot atomically while in-flight sessions keep serving
/// from the graph they started on. The const element type makes the
/// no-writes-after-freeze rule a compile-time property.
using DataGraphSnapshot = std::shared_ptr<const DataGraph>;

/// Builds the data graph. The database's reverse index is built as a side
/// effect. Node ids are assigned in (table, row) order — deterministic.
DataGraph BuildDataGraph(const Database& db,
                         const GraphBuildOptions& options = {});

}  // namespace banks

#endif  // BANKS_GRAPH_GRAPH_BUILDER_H_
