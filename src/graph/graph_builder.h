// Materialises the BANKS data graph from a relational database (§2.2).
//
// Every tuple becomes a node; every resolved FK reference u -> v becomes a
// forward edge (weight s(R(u), R(v))) and a backward edge (weight
// proportional to the referenced node's per-relation indegree). Node
// prestige defaults to indegree.
//
// The build is split in two stages so a refreeze can reuse work:
//   stage A  ResolveLinkTable    — walk the database once and resolve every
//                                  FK / inclusion link into Rid space (the
//                                  expensive part: per-row key encoding and
//                                  PK-index probes);
//   stage B  MaterializeDataGraph — deterministically turn a link list into
//                                  the frozen CSR (node enumeration, §2.2
//                                  weights, prestige, freeze).
// BuildDataGraph = A + B. The merge-refreeze path (update/refreeze.h)
// caches the stage-A LinkTable per epoch, patches it in O(delta), and
// reruns only stage B — byte-identical to a from-scratch rebuild because
// stage B is the same code consuming the same link sequence.
#ifndef BANKS_GRAPH_GRAPH_BUILDER_H_
#define BANKS_GRAPH_GRAPH_BUILDER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/edge_weight.h"
#include "graph/frozen_graph.h"
#include "graph/graph.h"
#include "storage/database.h"

namespace banks {

/// Knobs of the graph model. Defaults reproduce the paper's configuration.
struct GraphBuildOptions {
  /// Per-relation-pair link strengths (paper: Paper–Writes stronger than
  /// Paper–Cites, i.e. Cites gets a larger weight).
  SimilarityMatrix similarity;

  /// Combine rule when both directions carry FK links (eq. 1: min).
  BothLinkCombine both_link_combine = BothLinkCombine::kMin;

  /// Ablation switch: ignore indegree and give backward edges the same
  /// weight as forward ones (demonstrates the hub problem of §2.1).
  bool unit_backward_edges = false;

  /// Node prestige = indegree (paper's implementation). When false, all
  /// node weights are 0 (pure proximity ranking).
  bool indegree_prestige = true;
};

/// The database graph plus the Rid <-> NodeId correspondence. The graph is
/// a frozen CSR snapshot: build mutably via Graph, then assign
/// `dg.graph = FrozenGraph(g)`. Node weights remain assignable (prestige).
struct DataGraph {
  FrozenGraph graph;
  std::vector<Rid> node_rid;                      ///< NodeId -> Rid
  std::unordered_map<uint64_t, NodeId> rid_node;  ///< packed Rid -> NodeId

  /// NodeId for a tuple, or kInvalidNode.
  NodeId NodeForRid(Rid rid) const {
    auto it = rid_node.find(rid.Pack());
    return it == rid_node.end() ? kInvalidNode : it->second;
  }
  Rid RidForNode(NodeId n) const { return node_rid[n]; }

  /// Estimated bytes for the in-memory structures (§5.2 experiment).
  size_t MemoryBytes() const;
};

/// Shared immutable snapshot of one frozen data graph. Concurrent readers
/// (sessions, pool workers) each hold a reference; a future refreeze swaps
/// the engine's snapshot atomically while in-flight sessions keep serving
/// from the graph they started on. The const element type makes the
/// no-writes-after-freeze rule a compile-time property.
using DataGraphSnapshot = std::shared_ptr<const DataGraph>;

/// One resolved DB link, in Rid space so it survives the NodeId compaction
/// a refreeze applies. `src` identifies the constraint that induced it: the
/// FK's ordinal in db.foreign_keys(), or num_foreign_keys + the inclusion
/// dependency's ordinal.
struct ResolvedLink {
  uint32_t src = 0;
  Rid from;
  Rid to;
};

/// The deterministic discovery order of BuildDataGraph: constraints in
/// registration order, then referencing rows ascending, then (inclusion
/// dependencies only — FKs resolve at most one target per row) referred
/// rows ascending. ResolveLinkTable emits links in exactly this order; the
/// merge path keeps patched link lists sorted by it.
inline bool LinkOrder(const ResolvedLink& a, const ResolvedLink& b) {
  if (a.src != b.src) return a.src < b.src;
  if (a.from.row != b.from.row) return a.from.row < b.from.row;
  return a.to.row < b.to.row;
}

/// Stage-A output: every resolved link, plus (optionally) the side tables
/// the merge-refreeze needs to find rows whose links may change when a
/// tuple appears on the *referenced* side of a constraint.
struct LinkTable {
  /// All resolved links, in LinkOrder.
  std::vector<ResolvedLink> links;

  /// Non-NULL FK references that failed to resolve, keyed by
  /// DanglingFkKey(fk ordinal, referenced-PK value key): inserting a tuple
  /// carrying that PK must re-resolve these source rows. Entries are never
  /// eagerly pruned — stale ones are filtered at probe time (dead source
  /// rows) or are harmlessly re-resolved.
  std::unordered_map<std::string, std::vector<Rid>> dangling;

  /// Per inclusion-dependency ordinal: referring-column value key ->
  /// referring rows (recorded whether or not the value matched anything):
  /// inserting a tuple on the referred side with that value must
  /// re-resolve these source rows.
  std::vector<std::unordered_map<std::string, std::vector<Rid>>> referrers;

  /// Per-(node, source-relation) indegree counts of the graph built from
  /// `links` (the MaterializeDataGraph export; flat
  /// [node * num_tables + table_id]). The splice path patches these with
  /// the epoch's link deltas instead of recounting. Filled by the
  /// refreeze coordinator.
  std::vector<uint32_t> in_by_relation;
};

/// Key of a dangling FK reference: the probe an insert on the referenced
/// side uses to find source rows to re-resolve.
std::string DanglingFkKey(uint32_t fk_ordinal, const std::string& value_key);

/// Stage A: resolves every FK and inclusion link of `db` (live rows only)
/// into Rid space. `with_merge_aids` additionally fills `dangling` and
/// `referrers` (skipped for one-shot builds — they cost an extra hash
/// insert per reference).
LinkTable ResolveLinkTable(const Database& db, bool with_merge_aids = false);

/// Stage B: deterministically materialises the frozen data graph from a
/// link list in LinkOrder. Links whose endpoints are tombstoned (or
/// self-links) are skipped. Node ids are assigned in (table, row) order.
///
/// `in_by_relation` (optional) receives the per-(node, source-relation)
/// link-indegree counts IN_R(v) the §2.2 backward weights derive from,
/// flat-indexed [node * db.num_tables() + source_table_id] — the state the
/// splice path (graph/graph_splice.h) patches instead of recounting.
DataGraph MaterializeDataGraph(const Database& db,
                               const std::vector<ResolvedLink>& links,
                               const GraphBuildOptions& options = {},
                               std::vector<uint32_t>* in_by_relation = nullptr);

/// Builds the data graph (stage A + stage B). The database's reverse index
/// is NOT required; node ids are assigned in (table, row) order —
/// deterministic.
DataGraph BuildDataGraph(const Database& db,
                         const GraphBuildOptions& options = {});

}  // namespace banks

#endif  // BANKS_GRAPH_GRAPH_BUILDER_H_
