// Directed weighted graph used for BANKS search.
//
// Nodes are tuples (identified externally by Rid); edges carry the §2.2
// weights. Both out- and in-adjacency are stored because the backward
// expanding search runs Dijkstra "traversing the graph edges in reverse
// direction" (§3) while answer trees are read out along forward edges.
#ifndef BANKS_GRAPH_GRAPH_H_
#define BANKS_GRAPH_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace banks {

using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// One directed edge.
struct GraphEdge {
  NodeId to = kInvalidNode;
  double weight = 1.0;
};

/// Exact maximum over a node-weight vector (0 for an empty graph) — the
/// shared MaxNodeWeight() invariant baseline of Graph and FrozenGraph.
inline double MaxNodeWeightOf(const std::vector<double>& weights) {
  double max = 0.0;
  for (double w : weights) max = w > max ? w : max;
  return max;
}

/// Adjacency-list digraph with per-node weights (prestige).
class Graph {
 public:
  Graph() = default;
  explicit Graph(size_t num_nodes) { Resize(num_nodes); }

  void Resize(size_t num_nodes) {
    out_.resize(num_nodes);
    in_.resize(num_nodes);
    node_weight_.resize(num_nodes, 0.0);
  }

  /// Adds a node with the given prestige weight; returns its id.
  NodeId AddNode(double weight = 0.0);

  /// Adds directed edge u -> v with `weight` (> 0 required for Dijkstra).
  void AddEdge(NodeId u, NodeId v, double weight);

  size_t num_nodes() const { return out_.size(); }
  size_t num_edges() const { return num_edges_; }

  double node_weight(NodeId n) const { return node_weight_[n]; }
  void set_node_weight(NodeId n, double w);

  const std::vector<GraphEdge>& OutEdges(NodeId n) const { return out_[n]; }
  const std::vector<GraphEdge>& InEdges(NodeId n) const { return in_[n]; }

  /// Weight of edge u->v, or +inf if absent (first match if parallel).
  double EdgeWeight(NodeId u, NodeId v) const;
  bool HasEdge(NodeId u, NodeId v) const;

  /// Maximum node weight across the graph (>=0; 0 for empty graph).
  /// Used to normalise node scores (§2.3). Exact: set_node_weight
  /// recomputes when the current maximum is lowered.
  double MaxNodeWeight() const { return max_node_weight_; }

  /// Minimum edge weight across the graph (+inf if no edges). Used to
  /// normalise edge scores (§2.3). Exact because edges are only ever
  /// added, never removed or reweighted.
  double MinEdgeWeight() const { return min_edge_weight_; }

  /// Estimated heap footprint in bytes (for the §5.2 space experiment).
  size_t MemoryBytes() const;

 private:
  std::vector<std::vector<GraphEdge>> out_;
  std::vector<std::vector<GraphEdge>> in_;
  std::vector<double> node_weight_;
  size_t num_edges_ = 0;
  double max_node_weight_ = 0.0;
  double min_edge_weight_ = std::numeric_limits<double>::infinity();
};

}  // namespace banks

#endif  // BANKS_GRAPH_GRAPH_H_
