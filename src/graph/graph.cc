#include "graph/graph.h"

#include <algorithm>
#include <cassert>

namespace banks {

NodeId Graph::AddNode(double weight) {
  NodeId id = static_cast<NodeId>(out_.size());
  out_.emplace_back();
  in_.emplace_back();
  node_weight_.push_back(weight);
  max_node_weight_ = std::max(max_node_weight_, weight);
  return id;
}

void Graph::AddEdge(NodeId u, NodeId v, double weight) {
  assert(u < out_.size() && v < out_.size());
  assert(weight > 0 && "Dijkstra requires positive edge weights");
  out_[u].push_back(GraphEdge{v, weight});
  in_[v].push_back(GraphEdge{u, weight});
  ++num_edges_;
  min_edge_weight_ = std::min(min_edge_weight_, weight);
}

void Graph::set_node_weight(NodeId n, double w) {
  const double old = node_weight_[n];
  node_weight_[n] = w;
  if (w >= max_node_weight_) {
    max_node_weight_ = w;
  } else if (old == max_node_weight_) {
    // The lowered node may have held the maximum; recompute exactly.
    max_node_weight_ = MaxNodeWeightOf(node_weight_);
  }
}

double Graph::EdgeWeight(NodeId u, NodeId v) const {
  for (const auto& e : out_[u]) {
    if (e.to == v) return e.weight;
  }
  return std::numeric_limits<double>::infinity();
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  for (const auto& e : out_[u]) {
    if (e.to == v) return true;
  }
  return false;
}

size_t Graph::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  bytes += node_weight_.capacity() * sizeof(double);
  bytes += out_.capacity() * sizeof(std::vector<GraphEdge>);
  bytes += in_.capacity() * sizeof(std::vector<GraphEdge>);
  for (const auto& adj : out_) bytes += adj.capacity() * sizeof(GraphEdge);
  for (const auto& adj : in_) bytes += adj.capacity() * sizeof(GraphEdge);
  return bytes;
}

}  // namespace banks
