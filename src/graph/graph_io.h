// Data-graph persistence.
//
// §5.2 notes the graph "takes about 2 minutes to load initially" — graph
// construction is the startup cost. Serialising the built DataGraph lets a
// deployment rebuild only when the database changes. The format is a
// compact little-endian binary file with a magic/version header and a
// trailing checksum; Load verifies both.
#ifndef BANKS_GRAPH_GRAPH_IO_H_
#define BANKS_GRAPH_GRAPH_IO_H_

#include <string>

#include "graph/graph_builder.h"
#include "util/status.h"

namespace banks {

/// Writes the graph + Rid mapping to `path`.
Status SaveDataGraph(const DataGraph& dg, const std::string& path);

/// Reads a graph previously written by SaveDataGraph. Fails with
/// kCorruption on bad magic, version, truncation or checksum mismatch.
Result<DataGraph> LoadDataGraph(const std::string& path);

}  // namespace banks

#endif  // BANKS_GRAPH_GRAPH_IO_H_
