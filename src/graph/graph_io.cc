#include "graph/graph_io.h"

#include <cstring>
#include <fstream>
#include <vector>

#include "util/hash.h"

namespace banks {

namespace {

constexpr uint64_t kMagic = 0x424B4E475247ULL;  // "BKNGRG"
constexpr uint32_t kVersion = 1;

class Writer {
 public:
  explicit Writer(std::ostream* out) : out_(out) {}

  template <typename T>
  void Put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    out_->write(reinterpret_cast<const char*>(&v), sizeof(v));
    const auto* bytes = reinterpret_cast<const unsigned char*>(&v);
    for (size_t i = 0; i < sizeof(v); ++i) {
      checksum_ = checksum_ * 1099511628211ULL + bytes[i];
    }
  }

  uint64_t checksum() const { return checksum_; }

 private:
  std::ostream* out_;
  uint64_t checksum_ = 0xcbf29ce484222325ULL;
};

class Reader {
 public:
  explicit Reader(std::istream* in) : in_(in) {}

  template <typename T>
  bool Get(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    in_->read(reinterpret_cast<char*>(v), sizeof(*v));
    if (!in_->good()) return false;
    const auto* bytes = reinterpret_cast<const unsigned char*>(v);
    for (size_t i = 0; i < sizeof(*v); ++i) {
      checksum_ = checksum_ * 1099511628211ULL + bytes[i];
    }
    return true;
  }

  uint64_t checksum() const { return checksum_; }

 private:
  std::istream* in_;
  uint64_t checksum_ = 0xcbf29ce484222325ULL;
};

}  // namespace

Status SaveDataGraph(const DataGraph& dg, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot write '" + path + "'");
  Writer w(&out);
  w.Put(kMagic);
  w.Put(kVersion);

  const FrozenGraph& g = dg.graph;
  w.Put(static_cast<uint64_t>(g.num_nodes()));
  w.Put(static_cast<uint64_t>(g.num_edges()));
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    w.Put(dg.node_rid[n].Pack());
    w.Put(g.node_weight(n));
  }
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    w.Put(static_cast<uint32_t>(g.OutEdges(n).size()));
    for (const auto& e : g.OutEdges(n)) {
      w.Put(e.to);
      w.Put(e.weight);
    }
  }
  uint64_t checksum = w.checksum();
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  if (!out.good()) return Status::IoError("write failed for '" + path + "'");
  return Status::OK();
}

Result<DataGraph> LoadDataGraph(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot read '" + path + "'");
  Reader r(&in);

  uint64_t magic = 0;
  uint32_t version = 0;
  if (!r.Get(&magic) || magic != kMagic) {
    return Status::Corruption("bad magic in '" + path + "'");
  }
  if (!r.Get(&version) || version != kVersion) {
    return Status::Corruption("unsupported graph file version");
  }

  uint64_t num_nodes = 0, num_edges = 0;
  if (!r.Get(&num_nodes) || !r.Get(&num_edges)) {
    return Status::Corruption("truncated header");
  }
  if (num_nodes > (uint64_t{1} << 32)) {
    return Status::Corruption("implausible node count");
  }

  DataGraph dg;
  Graph g;  // mutable build graph; frozen into dg.graph once populated
  g.Resize(num_nodes);
  dg.node_rid.reserve(num_nodes);
  dg.rid_node.reserve(num_nodes);
  for (uint64_t n = 0; n < num_nodes; ++n) {
    uint64_t packed = 0;
    double weight = 0;
    if (!r.Get(&packed) || !r.Get(&weight)) {
      return Status::Corruption("truncated node section");
    }
    Rid rid = Rid::Unpack(packed);
    dg.node_rid.push_back(rid);
    dg.rid_node.emplace(packed, static_cast<NodeId>(n));
    g.set_node_weight(static_cast<NodeId>(n), weight);
  }
  uint64_t edges_read = 0;
  for (uint64_t n = 0; n < num_nodes; ++n) {
    uint32_t degree = 0;
    if (!r.Get(&degree)) return Status::Corruption("truncated adjacency");
    for (uint32_t e = 0; e < degree; ++e) {
      NodeId to = kInvalidNode;
      double weight = 0;
      if (!r.Get(&to) || !r.Get(&weight)) {
        return Status::Corruption("truncated edge");
      }
      if (to >= num_nodes || weight <= 0) {
        return Status::Corruption("invalid edge");
      }
      g.AddEdge(static_cast<NodeId>(n), to, weight);
      ++edges_read;
    }
  }
  if (edges_read != num_edges) {
    return Status::Corruption("edge count mismatch");
  }
  uint64_t expected = r.checksum();
  uint64_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (!in.good() || stored != expected) {
    return Status::Corruption("checksum mismatch in '" + path + "'");
  }
  dg.graph = FrozenGraph(g);
  return dg;
}

}  // namespace banks
