#include "graph/edge_weight.h"

#include <algorithm>
#include <cassert>

namespace banks {

void SimilarityMatrix::Set(const std::string& from_table,
                           const std::string& to_table, double weight) {
  assert(weight > 0);
  weights_[Key(from_table, to_table)] = weight;
}

double SimilarityMatrix::Get(const std::string& from_table,
                             const std::string& to_table) const {
  auto it = weights_.find(Key(from_table, to_table));
  if (it == weights_.end()) return 1.0;
  return it->second;
}

double CombineBothLinks(double a, double b, BothLinkCombine combine) {
  switch (combine) {
    case BothLinkCombine::kMin:
      return std::min(a, b);
    case BothLinkCombine::kParallelResistance:
      return (a * b) / (a + b);
  }
  return std::min(a, b);
}

double BackwardEdgeWeight(double similarity, size_t indegree_same_relation) {
  // At least 1: the link that induced this back edge always exists.
  size_t in = std::max<size_t>(indegree_same_relation, 1);
  return similarity * static_cast<double>(in);
}

}  // namespace banks
