#include "graph/graph_builder.h"

#include <utility>

#include "util/hash.h"

namespace banks {

size_t DataGraph::MemoryBytes() const {
  size_t bytes = graph.MemoryBytes();
  bytes += node_rid.capacity() * sizeof(Rid);
  // Rough bucket accounting for the hash map.
  bytes += rid_node.size() * (sizeof(uint64_t) + sizeof(NodeId) +
                              2 * sizeof(void*));
  return bytes;
}

DataGraph BuildDataGraph(const Database& db, const GraphBuildOptions& options) {
  DataGraph dg;
  Graph g;  // mutable build graph; frozen into dg.graph at the end

  // 1. Nodes, in deterministic (table id, row) order. Tombstoned rows are
  //    skipped: a refreeze after deletes compacts the node id space (Rids
  //    stay stable; NodeIds are per-snapshot).
  size_t total = db.TotalRows();
  dg.node_rid.reserve(total);
  dg.rid_node.reserve(total);
  for (const auto& name : db.table_names()) {
    const Table* t = db.table(name);
    for (uint32_t r = 0; r < t->num_rows(); ++r) {
      if (t->IsDeleted(r)) continue;
      Rid rid{t->id(), r};
      NodeId id = g.AddNode(0.0);
      dg.node_rid.push_back(rid);
      dg.rid_node.emplace(rid.Pack(), id);
    }
  }

  // 2. Resolve every FK link once: (from node, to node, from table, to table).
  struct Link {
    NodeId from;
    NodeId to;
    const std::string* from_table;
    const std::string* to_table;
  };
  std::vector<Link> links;
  for (const auto& fk : db.foreign_keys()) {
    const Table* from_t = db.table(fk.table);
    if (from_t == nullptr) continue;
    for (uint32_t r = 0; r < from_t->num_rows(); ++r) {
      if (from_t->IsDeleted(r)) continue;
      Rid from{from_t->id(), r};
      auto to = db.ResolveFk(fk, from);
      if (!to.has_value()) continue;
      NodeId fn = dg.NodeForRid(from);
      NodeId tn = dg.NodeForRid(*to);
      if (fn == kInvalidNode || tn == kInvalidNode || fn == tn) continue;
      links.push_back(Link{fn, tn, &fk.table, &fk.ref_table});
    }
  }
  // Inclusion dependencies (§2.1): one link per matched referred tuple —
  // the referred column need not be a key.
  for (const auto& ind : db.inclusion_dependencies()) {
    const Table* from_t = db.table(ind.table);
    if (from_t == nullptr) continue;
    for (uint32_t r = 0; r < from_t->num_rows(); ++r) {
      if (from_t->IsDeleted(r)) continue;
      Rid from{from_t->id(), r};
      NodeId fn = dg.NodeForRid(from);
      if (fn == kInvalidNode) continue;
      for (Rid to : db.ResolveInclusion(ind, from)) {
        NodeId tn = dg.NodeForRid(to);
        if (tn == kInvalidNode || fn == tn) continue;
        links.push_back(Link{fn, tn, &ind.table, &ind.ref_table});
      }
    }
  }

  // 3. Per-relation indegree of each node: IN_R(v) = #links into v whose
  //    source tuple belongs to relation R. Needed for backward weights.
  //    Key: (node, table id of source relation).
  std::unordered_map<uint64_t, uint32_t> in_by_relation;
  std::vector<uint32_t> indegree(g.num_nodes(), 0);
  auto rel_key = [&db](NodeId v, const std::string& table) {
    uint64_t h = v;
    HashCombine(&h, db.table(table)->id());
    return h;
  };
  for (const auto& l : links) {
    ++in_by_relation[rel_key(l.to, *l.from_table)];
    ++indegree[l.to];
  }

  // 4. Candidate weights per directed pair. A DB link u->v proposes:
  //      forward  (u,v): s(R(u), R(v))
  //      backward (v,u): IN_{R(u)}(v) * s(R(v), R(u))
  //    When a pair accumulates several candidates (parallel FKs, or links
  //    in both directions), they combine per options.both_link_combine.
  std::unordered_map<uint64_t, double> pair_weight;
  auto pair_key = [](NodeId a, NodeId b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  };
  auto propose = [&](NodeId a, NodeId b, double w) {
    uint64_t key = pair_key(a, b);
    auto it = pair_weight.find(key);
    if (it == pair_weight.end()) {
      pair_weight.emplace(key, w);
    } else {
      it->second = CombineBothLinks(it->second, w, options.both_link_combine);
    }
  };

  for (const auto& l : links) {
    double fwd = options.similarity.Get(*l.from_table, *l.to_table);
    propose(l.from, l.to, fwd);

    double back_sim = options.similarity.Get(*l.to_table, *l.from_table);
    double back =
        options.unit_backward_edges
            ? back_sim
            : BackwardEdgeWeight(back_sim,
                                 in_by_relation[rel_key(l.to, *l.from_table)]);
    propose(l.to, l.from, back);
  }

  // 5. Materialise edges deterministically: iterate links in insertion
  //    order, emitting each directed pair once.
  std::unordered_map<uint64_t, bool> emitted;
  auto emit = [&](NodeId a, NodeId b) {
    uint64_t key = pair_key(a, b);
    if (emitted[key]) return;
    emitted[key] = true;
    g.AddEdge(a, b, pair_weight.at(key));
  };
  for (const auto& l : links) {
    emit(l.from, l.to);
    emit(l.to, l.from);
  }

  // 6. Prestige.
  if (options.indegree_prestige) {
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      g.set_node_weight(n, static_cast<double>(indegree[n]));
    }
  }

  // 7. Freeze into the CSR layout every search-time consumer runs over.
  dg.graph = FrozenGraph(g);
  return dg;
}

}  // namespace banks
