#include "graph/graph_builder.h"

#include <algorithm>
#include <utility>

namespace banks {

size_t DataGraph::MemoryBytes() const {
  size_t bytes = graph.MemoryBytes();
  bytes += node_rid.capacity() * sizeof(Rid);
  // Rough bucket accounting for the hash map.
  bytes += rid_node.size() * (sizeof(uint64_t) + sizeof(NodeId) +
                              2 * sizeof(void*));
  return bytes;
}

std::string DanglingFkKey(uint32_t fk_ordinal, const std::string& value_key) {
  return std::to_string(fk_ordinal) + '\x1f' + value_key;
}

LinkTable ResolveLinkTable(const Database& db, bool with_merge_aids) {
  LinkTable out;
  const auto& fks = db.foreign_keys();
  const auto& inds = db.inclusion_dependencies();
  if (with_merge_aids) out.referrers.resize(inds.size());

  // FK links: one target per (constraint, referencing row). Resolution is
  // inlined (rather than db.ResolveFk) so the encoded key is available for
  // the dangling side table.
  for (uint32_t fi = 0; fi < fks.size(); ++fi) {
    const ForeignKey& fk = fks[fi];
    const Table* from_t = db.table(fk.table);
    const Table* to_t = db.table(fk.ref_table);
    if (from_t == nullptr || to_t == nullptr) continue;
    std::vector<size_t> cols;
    cols.reserve(fk.columns.size());
    for (const auto& c : fk.columns) {
      cols.push_back(*from_t->schema().ColumnIndex(c));
    }
    for (uint32_t r = 0; r < from_t->num_rows(); ++r) {
      if (from_t->IsDeleted(r)) continue;
      const Tuple& row = from_t->row(r);
      bool has_null = false;
      for (size_t c : cols) has_null |= row.at(c).is_null();
      if (has_null) continue;  // NULL FK: no reference
      const Rid from{from_t->id(), r};
      const std::string key = row.EncodeKey(cols);
      auto to_row = to_t->LookupPkKey(key);
      if (to_row.has_value()) {
        const Rid to{to_t->id(), *to_row};
        if (to != from) out.links.push_back(ResolvedLink{fi, from, to});
      } else if (with_merge_aids) {
        out.dangling[DanglingFkKey(fi, key)].push_back(from);
      }
    }
  }

  // Inclusion dependencies (§2.1): one link per matched referred tuple —
  // the referred column need not be a key.
  for (uint32_t ii = 0; ii < inds.size(); ++ii) {
    const InclusionDependency& ind = inds[ii];
    const Table* from_t = db.table(ind.table);
    if (from_t == nullptr) continue;
    auto col = from_t->schema().ColumnIndex(ind.column);
    for (uint32_t r = 0; r < from_t->num_rows(); ++r) {
      if (from_t->IsDeleted(r)) continue;
      const Rid from{from_t->id(), r};
      if (with_merge_aids && col.has_value()) {
        const Value& v = from_t->row(r).at(*col);
        if (!v.is_null()) {
          out.referrers[ii][EncodeValuesKey({v})].push_back(from);
        }
      }
      for (Rid to : db.ResolveInclusion(ind, from)) {
        if (to != from) {
          out.links.push_back(
              ResolvedLink{static_cast<uint32_t>(fks.size()) + ii, from, to});
        }
      }
    }
  }
  return out;
}

DataGraph MaterializeDataGraph(const Database& db,
                               const std::vector<ResolvedLink>& links,
                               const GraphBuildOptions& options,
                               std::vector<uint32_t>* in_by_relation) {
  DataGraph dg;
  Graph g;  // mutable build graph; frozen into dg.graph at the end

  // 1. Nodes, in deterministic (table id, row) order. Tombstoned rows are
  //    skipped: a refreeze after deletes compacts the node id space (Rids
  //    stay stable; NodeIds are per-snapshot).
  size_t total = db.TotalRows();
  dg.node_rid.reserve(total);
  dg.rid_node.reserve(total);
  for (const auto& name : db.table_names()) {
    const Table* t = db.table(name);
    for (uint32_t r = 0; r < t->num_rows(); ++r) {
      if (t->IsDeleted(r)) continue;
      Rid rid{t->id(), r};
      NodeId id = g.AddNode(0.0);
      dg.node_rid.push_back(rid);
      dg.rid_node.emplace(rid.Pack(), id);
    }
  }

  // 2. Per-constraint metadata: the relation names the §2.2 similarity
  //    lookups need, and the source relation's table id for the
  //    per-relation indegree key.
  struct SrcMeta {
    const std::string* from_table;
    const std::string* to_table;
    uint32_t from_table_id;
  };
  std::vector<SrcMeta> srcs;
  srcs.reserve(db.foreign_keys().size() + db.inclusion_dependencies().size());
  for (const auto& fk : db.foreign_keys()) {
    const Table* from_t = db.table(fk.table);
    srcs.push_back(SrcMeta{&fk.table, &fk.ref_table,
                           from_t != nullptr ? from_t->id() : 0});
  }
  for (const auto& ind : db.inclusion_dependencies()) {
    const Table* from_t = db.table(ind.table);
    srcs.push_back(SrcMeta{&ind.table, &ind.ref_table,
                           from_t != nullptr ? from_t->id() : 0});
  }

  // Node-space view of the links. Endpoints that fail to resolve
  // (tombstoned rows) and self-links are skipped, matching what a
  // from-scratch discovery would produce.
  struct Link {
    NodeId from;
    NodeId to;
    uint32_t src;
  };
  std::vector<Link> live;
  live.reserve(links.size());
  for (const ResolvedLink& l : links) {
    if (l.src >= srcs.size()) continue;
    NodeId fn = dg.NodeForRid(l.from);
    NodeId tn = dg.NodeForRid(l.to);
    if (fn == kInvalidNode || tn == kInvalidNode || fn == tn) continue;
    live.push_back(Link{fn, tn, l.src});
  }

  // 3. Per-relation indegree of each node: IN_R(v) = #links into v whose
  //    source tuple belongs to relation R. Needed for backward weights.
  //    Flat [node * num_tables + source table id] — table ids are dense.
  const size_t num_tables = db.num_tables();
  std::vector<uint32_t> in_by_rel(g.num_nodes() * num_tables, 0);
  std::vector<uint32_t> indegree(g.num_nodes(), 0);
  auto rel_key = [num_tables](NodeId v, uint32_t from_table_id) {
    return static_cast<size_t>(v) * num_tables + from_table_id;
  };
  for (const auto& l : live) {
    ++in_by_rel[rel_key(l.to, srcs[l.src].from_table_id)];
    ++indegree[l.to];
  }

  // 4. Candidate weights per directed pair. A DB link u->v proposes:
  //      forward  (u,v): s(R(u), R(v))
  //      backward (v,u): IN_{R(u)}(v) * s(R(v), R(u))
  //    When a pair accumulates several candidates (parallel FKs, or links
  //    in both directions), they combine per options.both_link_combine.
  std::unordered_map<uint64_t, double> pair_weight;
  auto pair_key = [](NodeId a, NodeId b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  };
  auto propose = [&](NodeId a, NodeId b, double w) {
    uint64_t key = pair_key(a, b);
    auto it = pair_weight.find(key);
    if (it == pair_weight.end()) {
      pair_weight.emplace(key, w);
    } else {
      it->second = CombineBothLinks(it->second, w, options.both_link_combine);
    }
  };

  for (const auto& l : live) {
    const SrcMeta& src = srcs[l.src];
    double fwd = options.similarity.Get(*src.from_table, *src.to_table);
    propose(l.from, l.to, fwd);

    double back_sim = options.similarity.Get(*src.to_table, *src.from_table);
    double back =
        options.unit_backward_edges
            ? back_sim
            : BackwardEdgeWeight(back_sim,
                                 in_by_rel[rel_key(l.to, src.from_table_id)]);
    propose(l.to, l.from, back);
  }

  // 5. Materialise edges deterministically: iterate links in insertion
  //    order, emitting each directed pair once.
  std::unordered_map<uint64_t, bool> emitted;
  auto emit = [&](NodeId a, NodeId b) {
    uint64_t key = pair_key(a, b);
    if (emitted[key]) return;
    emitted[key] = true;
    g.AddEdge(a, b, pair_weight.at(key));
  };
  for (const auto& l : live) {
    emit(l.from, l.to);
    emit(l.to, l.from);
  }

  // 6. Prestige.
  if (options.indegree_prestige) {
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      g.set_node_weight(n, static_cast<double>(indegree[n]));
    }
  }

  // 7. Freeze into the CSR layout every search-time consumer runs over.
  dg.graph = FrozenGraph(g);
  if (in_by_relation != nullptr) *in_by_relation = std::move(in_by_rel);
  return dg;
}

DataGraph BuildDataGraph(const Database& db, const GraphBuildOptions& options) {
  return MaterializeDataGraph(
      db, ResolveLinkTable(db, /*with_merge_aids=*/false).links, options);
}

}  // namespace banks
