// Immutable CSR (compressed sparse row) snapshot of a Graph.
//
// The mutable adjacency-list Graph is the build-time representation; every
// search-time consumer (iterators, scorer, prestige, steiner baseline) runs
// over a FrozenGraph instead: one contiguous `offsets` + `edges` array pair
// per direction, so a node's neighbourhood is a cache-friendly span rather
// than a pointer-chased vector-of-vectors. Edge topology is frozen at
// construction; node weights (prestige) stay assignable because prestige
// models are applied after the freeze.
//
// Invariants (recomputed exactly at freeze time, maintained thereafter):
//   MaxNodeWeight() == max over node_weight(n)   (0 for an empty graph)
//   MinEdgeWeight() == min over edge weights     (+inf if no edges)
#ifndef BANKS_GRAPH_FROZEN_GRAPH_H_
#define BANKS_GRAPH_FROZEN_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace banks {

/// CSR digraph with per-node weights. Out- and in-adjacency are both
/// materialised because backward expansion relaxes incoming edges while
/// forward expansion and answer read-out follow outgoing ones.
class FrozenGraph {
 public:
  using EdgeSpan = std::span<const GraphEdge>;

  FrozenGraph() = default;

  /// Freezes `g`. Per-node edge order is preserved (insertion order), so a
  /// graph frozen twice yields identical adjacency.
  explicit FrozenGraph(const Graph& g);

  /// Adopts pre-assembled CSR arrays (the merge-refreeze splice path,
  /// graph/graph_splice.h). Offsets carry num_nodes+1 entries; edges of
  /// node n occupy [offsets[n], offsets[n+1]) in both arrays. The
  /// MaxNodeWeight/MinEdgeWeight invariants are recomputed here.
  FrozenGraph(std::vector<uint32_t> out_offsets,
              std::vector<GraphEdge> out_edges,
              std::vector<uint32_t> in_offsets, std::vector<GraphEdge> in_edges,
              std::vector<double> node_weights);

  size_t num_nodes() const { return node_weight_.size(); }
  size_t num_edges() const { return out_edges_.size(); }

  EdgeSpan OutEdges(NodeId n) const {
    return {out_edges_.data() + out_offsets_[n],
            out_offsets_[n + 1] - out_offsets_[n]};
  }
  EdgeSpan InEdges(NodeId n) const {
    return {in_edges_.data() + in_offsets_[n],
            in_offsets_[n + 1] - in_offsets_[n]};
  }

  /// Neighbourhood in the given expansion direction: kForward follows
  /// out-edges, kBackward incoming ones.
  EdgeSpan Edges(NodeId n, bool forward) const {
    return forward ? OutEdges(n) : InEdges(n);
  }

  size_t OutDegree(NodeId n) const {
    return out_offsets_[n + 1] - out_offsets_[n];
  }
  size_t InDegree(NodeId n) const {
    return in_offsets_[n + 1] - in_offsets_[n];
  }

  double node_weight(NodeId n) const { return node_weight_[n]; }

  /// Reassigns a node weight (prestige models run post-freeze). Keeps
  /// MaxNodeWeight() exact even when the current maximum is lowered.
  void set_node_weight(NodeId n, double w);

  /// Bulk weight overwrite: assigns weights[n] to node n (extra entries
  /// ignored, missing entries left unchanged) and recomputes the maximum
  /// once. Use for whole-graph prestige application — per-node
  /// set_node_weight rescans whenever the current maximum is lowered.
  void SetNodeWeights(const std::vector<double>& weights);

  /// Weight of edge u->v, or +inf if absent (first match if parallel).
  double EdgeWeight(NodeId u, NodeId v) const;
  bool HasEdge(NodeId u, NodeId v) const;

  /// Maximum node weight across the graph (>=0; 0 for empty graph).
  double MaxNodeWeight() const { return max_node_weight_; }

  /// Minimum edge weight across the graph (+inf if no edges).
  double MinEdgeWeight() const { return min_edge_weight_; }

  /// Estimated heap footprint in bytes (for the §5.2 space experiment).
  size_t MemoryBytes() const;

 private:
  // offsets have num_nodes()+1 entries; edges of node n occupy
  // [offsets[n], offsets[n+1]).
  std::vector<uint32_t> out_offsets_{0};
  std::vector<uint32_t> in_offsets_{0};
  std::vector<GraphEdge> out_edges_;
  std::vector<GraphEdge> in_edges_;
  std::vector<double> node_weight_;
  double max_node_weight_ = 0.0;
  double min_edge_weight_ = std::numeric_limits<double>::infinity();
};

}  // namespace banks

#endif  // BANKS_GRAPH_FROZEN_GRAPH_H_
