// Immutable CSR (compressed sparse row) snapshot of a Graph.
//
// The mutable adjacency-list Graph is the build-time representation; every
// search-time consumer (iterators, scorer, prestige, steiner baseline) runs
// over a FrozenGraph instead: one contiguous `offsets` + `edges` array pair
// per direction, so a node's neighbourhood is a cache-friendly span rather
// than a pointer-chased vector-of-vectors. Edge topology is frozen at
// construction; node weights (prestige) stay assignable because prestige
// models are applied after the freeze.
//
// Storage modes:
//   - Owning (default): the CSR arrays live in member vectors, as built by
//     the Graph-freeze or splice constructors.
//   - View: the arrays live in externally-owned memory (a mapped snapshot
//     file, src/snapshot/) referenced through spans, with a type-erased
//     `arena` keep-alive so the mapping outlives every copy of the graph.
//     Topology is immutable either way; assigning node weights to a view
//     detaches just the weight array into owned storage (copy-on-write),
//     leaving offsets/edges mapped.
//
// Invariants (recomputed exactly at freeze time, maintained thereafter;
// the view constructor trusts the caller's stored values):
//   MaxNodeWeight() == max over node_weight(n)   (0 for an empty graph)
//   MinEdgeWeight() == min over edge weights     (+inf if no edges)
#ifndef BANKS_GRAPH_FROZEN_GRAPH_H_
#define BANKS_GRAPH_FROZEN_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace banks {

/// CSR digraph with per-node weights. Out- and in-adjacency are both
/// materialised because backward expansion relaxes incoming edges while
/// forward expansion and answer read-out follow outgoing ones.
class FrozenGraph {
 public:
  using EdgeSpan = std::span<const GraphEdge>;

  FrozenGraph() = default;

  /// Freezes `g`. Per-node edge order is preserved (insertion order), so a
  /// graph frozen twice yields identical adjacency.
  explicit FrozenGraph(const Graph& g);

  /// Adopts pre-assembled CSR arrays (the merge-refreeze splice path,
  /// graph/graph_splice.h). Offsets carry num_nodes+1 entries; edges of
  /// node n occupy [offsets[n], offsets[n+1]) in both arrays. The
  /// MaxNodeWeight/MinEdgeWeight invariants are recomputed here.
  FrozenGraph(std::vector<uint32_t> out_offsets,
              std::vector<GraphEdge> out_edges,
              std::vector<uint32_t> in_offsets, std::vector<GraphEdge> in_edges,
              std::vector<double> node_weights);

  /// View constructor: wraps externally-owned CSR arrays without copying
  /// a single element (the snapshot mmap path). `arena` is held for the
  /// lifetime of this graph and every copy of it, keeping the backing
  /// storage mapped. The invariant values are trusted as stored — the
  /// caller (snapshot reader) verifies them with section checksums, so a
  /// mapped graph is byte-identical to the freshly built one it captured.
  FrozenGraph(std::span<const uint32_t> out_offsets, EdgeSpan out_edges,
              std::span<const uint32_t> in_offsets, EdgeSpan in_edges,
              std::span<const double> node_weights, double max_node_weight,
              double min_edge_weight, std::shared_ptr<const void> arena);

  size_t num_nodes() const { return node_weights().size(); }
  size_t num_edges() const { return out_edges().size(); }

  EdgeSpan OutEdges(NodeId n) const {
    const auto off = out_offsets();
    return out_edges().subspan(off[n], off[n + 1] - off[n]);
  }
  EdgeSpan InEdges(NodeId n) const {
    const auto off = in_offsets();
    return in_edges().subspan(off[n], off[n + 1] - off[n]);
  }

  /// Neighbourhood in the given expansion direction: kForward follows
  /// out-edges, kBackward incoming ones.
  EdgeSpan Edges(NodeId n, bool forward) const {
    return forward ? OutEdges(n) : InEdges(n);
  }

  size_t OutDegree(NodeId n) const {
    const auto off = out_offsets();
    return off[n + 1] - off[n];
  }
  size_t InDegree(NodeId n) const {
    const auto off = in_offsets();
    return off[n + 1] - off[n];
  }

  double node_weight(NodeId n) const { return node_weights()[n]; }

  /// Reassigns a node weight (prestige models run post-freeze). Keeps
  /// MaxNodeWeight() exact even when the current maximum is lowered. On a
  /// view, detaches the weight array into owned storage first.
  void set_node_weight(NodeId n, double w);

  /// Bulk weight overwrite: assigns weights[n] to node n (extra entries
  /// ignored, missing entries left unchanged) and recomputes the maximum
  /// once. Use for whole-graph prestige application — per-node
  /// set_node_weight rescans whenever the current maximum is lowered.
  void SetNodeWeights(const std::vector<double>& weights);

  /// Weight of edge u->v, or +inf if absent (first match if parallel).
  double EdgeWeight(NodeId u, NodeId v) const;
  bool HasEdge(NodeId u, NodeId v) const;

  /// Maximum node weight across the graph (>=0; 0 for empty graph).
  double MaxNodeWeight() const { return max_node_weight_; }

  /// Minimum edge weight across the graph (+inf if no edges).
  double MinEdgeWeight() const { return min_edge_weight_; }

  /// Raw CSR arrays, valid in either storage mode (the snapshot writer
  /// serialises through these).
  std::span<const uint32_t> out_offsets() const {
    return arena_ && out_offsets_.empty() ? v_out_offsets_
                                          : std::span(out_offsets_);
  }
  std::span<const uint32_t> in_offsets() const {
    return arena_ && in_offsets_.empty() ? v_in_offsets_
                                         : std::span(in_offsets_);
  }
  EdgeSpan out_edges() const {
    return arena_ && out_edges_.empty() ? v_out_edges_ : EdgeSpan(out_edges_);
  }
  EdgeSpan in_edges() const {
    return arena_ && in_edges_.empty() ? v_in_edges_ : EdgeSpan(in_edges_);
  }
  std::span<const double> node_weights() const {
    return arena_ && node_weight_.empty() ? v_node_weight_
                                          : std::span(node_weight_);
  }

  /// True when the CSR arrays are views into externally-owned storage
  /// (the bench zero-copy gate checks this).
  bool is_view() const { return arena_ != nullptr; }

  /// Estimated footprint in bytes: owned heap plus mapped view bytes
  /// (for the §5.2 space experiment — mapped pages are still resident
  /// once touched).
  size_t MemoryBytes() const;

 private:
  // Copies the mapped weight array into owned storage so it can be
  // assigned; no-op in owning mode.
  void DetachWeights();

  // Owning storage: offsets have num_nodes()+1 entries; edges of node n
  // occupy [offsets[n], offsets[n+1]). Empty (except the default offsets
  // sentinel) when the corresponding view span below is active.
  std::vector<uint32_t> out_offsets_{0};
  std::vector<uint32_t> in_offsets_{0};
  std::vector<GraphEdge> out_edges_;
  std::vector<GraphEdge> in_edges_;
  std::vector<double> node_weight_;

  // View storage (active iff arena_ set and the owning vector is empty;
  // per-array so a detached weight array can coexist with mapped edges).
  std::span<const uint32_t> v_out_offsets_;
  std::span<const uint32_t> v_in_offsets_;
  EdgeSpan v_out_edges_;
  EdgeSpan v_in_edges_;
  std::span<const double> v_node_weight_;
  std::shared_ptr<const void> arena_;

  double max_node_weight_ = 0.0;
  double min_edge_weight_ = std::numeric_limits<double>::infinity();
};

}  // namespace banks

#endif  // BANKS_GRAPH_FROZEN_GRAPH_H_
