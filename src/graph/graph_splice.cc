#include "graph/graph_splice.h"

#include <cassert>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "graph/edge_weight.h"

namespace banks {

namespace {

/// Per-constraint metadata, as in MaterializeDataGraph step 2.
struct SrcMeta {
  const std::string* from_table;
  const std::string* to_table;
  uint32_t from_table_id;
};

std::vector<SrcMeta> ConstraintMeta(const Database& db) {
  std::vector<SrcMeta> srcs;
  srcs.reserve(db.foreign_keys().size() + db.inclusion_dependencies().size());
  for (const auto& fk : db.foreign_keys()) {
    const Table* from_t = db.table(fk.table);
    srcs.push_back(SrcMeta{&fk.table, &fk.ref_table,
                           from_t != nullptr ? from_t->id() : 0});
  }
  for (const auto& ind : db.inclusion_dependencies()) {
    const Table* from_t = db.table(ind.table);
    srcs.push_back(SrcMeta{&ind.table, &ind.ref_table,
                           from_t != nullptr ? from_t->id() : 0});
  }
  return srcs;
}

}  // namespace

DataGraph SpliceDataGraph(const Database& db, const DataGraph& old_dg,
                          const std::vector<ResolvedLink>& merged_links,
                          const GraphSpliceDelta& delta,
                          const std::vector<uint32_t>& old_counts,
                          const GraphBuildOptions& options,
                          std::vector<uint32_t>* new_counts) {
  const size_t num_tables = db.num_tables();
  const size_t old_n = old_dg.graph.num_nodes();
  const std::vector<SrcMeta> srcs = ConstraintMeta(db);

  // 1. New node enumeration, exactly as MaterializeDataGraph assigns ids:
  //    (table id, row) order over live rows. Both the old and the new
  //    node_rid sequences ascend in that order (deletes drop entries,
  //    inserts append rows), so one two-pointer pass yields the remap.
  DataGraph dg;
  const size_t total = db.TotalRows();
  dg.node_rid.reserve(total);
  dg.rid_node.reserve(total);
  for (const auto& name : db.table_names()) {
    const Table* t = db.table(name);
    for (uint32_t r = 0; r < t->num_rows(); ++r) {
      if (t->IsDeleted(r)) continue;
      Rid rid{t->id(), r};
      dg.rid_node.emplace(rid.Pack(),
                          static_cast<NodeId>(dg.node_rid.size()));
      dg.node_rid.push_back(rid);
    }
  }
  const size_t new_n = dg.node_rid.size();

  std::vector<NodeId> old_to_new(old_n, kInvalidNode);
  std::vector<NodeId> new_to_old(new_n, kInvalidNode);
  for (size_t i = 0, j = 0; i < old_n && j < new_n;) {
    const Rid a = old_dg.node_rid[i];
    const Rid b = dg.node_rid[j];
    if (a == b) {
      old_to_new[i] = static_cast<NodeId>(j);
      new_to_old[j] = static_cast<NodeId>(i);
      ++i;
      ++j;
    } else if (a < b) {
      ++i;  // deleted old row: no new id
    } else {
      ++j;  // inserted new row: no old id
    }
  }

  // 2. Patched per-(node, source-relation) indegree counts: remap the old
  //    rows, then apply the removed/added link deltas. Every old-table
  //    link was counted (its endpoints were live at the old freeze), so
  //    decrements match; added links resolve among live rows only.
  std::vector<uint32_t> counts(new_n * num_tables, 0);
  for (size_t i = 0; i < old_n; ++i) {
    const NodeId n = old_to_new[i];
    if (n == kInvalidNode) continue;
    for (size_t t = 0; t < num_tables; ++t) {
      counts[n * num_tables + t] = old_counts[i * num_tables + t];
    }
  }
  auto node_of = [&dg](Rid r) { return dg.NodeForRid(r); };
  for (const ResolvedLink& l : delta.removed) {
    const NodeId tn = node_of(l.to);
    if (tn != kInvalidNode && l.src < srcs.size()) {
      --counts[tn * num_tables + srcs[l.src].from_table_id];
    }
  }
  for (const ResolvedLink& l : delta.added) {
    const NodeId tn = node_of(l.to);
    if (tn != kInvalidNode && l.src < srcs.size()) {
      ++counts[tn * num_tables + srcs[l.src].from_table_id];
    }
  }

  // 3. Touched nodes: everything whose adjacency content or order can
  //    differ from a straight remap of the old CSR —
  //      - endpoints of removed/added links (pair sets or weights change),
  //      - inserted rows (new nodes),
  //      - the old partner fan of every removed/added target: its
  //        per-relation indegree may have changed, and §2.2 backward
  //        weights toward ALL its partners derive from that count.
  std::vector<char> touched(new_n, 0);
  auto touch = [&](Rid r) {
    const NodeId n = node_of(r);
    if (n != kInvalidNode) touched[n] = 1;
  };
  std::unordered_set<NodeId> fan_targets;  // old ids, deduplicated
  auto note_target = [&](Rid to) {
    const NodeId tn = node_of(to);
    if (tn == kInvalidNode) return;
    const NodeId old_id = new_to_old[tn];
    if (old_id != kInvalidNode) fan_targets.insert(old_id);
  };
  for (const ResolvedLink& l : delta.removed) {
    touch(l.from);
    touch(l.to);
    note_target(l.to);
  }
  for (const ResolvedLink& l : delta.added) {
    touch(l.from);
    touch(l.to);
    note_target(l.to);
  }
  for (const Rid rid : delta.inserted) touch(rid);
  for (const NodeId old_id : fan_targets) {
    // Every link between two nodes emits both directed edges, so the old
    // out-neighbour span IS the partner set.
    for (const auto& e : old_dg.graph.OutEdges(old_id)) {
      const NodeId pn = old_to_new[e.to];
      if (pn != kInvalidNode) touched[pn] = 1;
    }
  }

  // 4. Re-materialise the touched subgraph from its incident links, with
  //    MaterializeDataGraph's exact fold and emission order. A touched
  //    node's incident links are all present in the filtered sequence (in
  //    merged order), so per-node relative order is preserved; pairs
  //    between two untouched nodes keep candidates, counts and fold order
  //    unchanged and are never recomputed.
  struct Link {
    NodeId from;
    NodeId to;
    uint32_t src;
  };
  std::vector<Link> tl;
  for (const ResolvedLink& l : merged_links) {
    if (l.src >= srcs.size()) continue;
    const NodeId fn = node_of(l.from);
    const NodeId tn = node_of(l.to);
    if (fn == kInvalidNode || tn == kInvalidNode || fn == tn) continue;
    if (touched[fn] == 0 && touched[tn] == 0) continue;
    tl.push_back(Link{fn, tn, l.src});
  }

  std::unordered_map<uint64_t, double> pair_weight;
  pair_weight.reserve(tl.size() * 2);
  auto pair_key = [](NodeId a, NodeId b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  };
  auto propose = [&](NodeId a, NodeId b, double w) {
    uint64_t key = pair_key(a, b);
    auto it = pair_weight.find(key);
    if (it == pair_weight.end()) {
      pair_weight.emplace(key, w);
    } else {
      it->second = CombineBothLinks(it->second, w, options.both_link_combine);
    }
  };
  for (const auto& l : tl) {
    const SrcMeta& src = srcs[l.src];
    propose(l.from, l.to, options.similarity.Get(*src.from_table,
                                                 *src.to_table));
    const double back_sim =
        options.similarity.Get(*src.to_table, *src.from_table);
    const double back =
        options.unit_backward_edges
            ? back_sim
            : BackwardEdgeWeight(
                  back_sim,
                  counts[l.to * num_tables + src.from_table_id]);
    propose(l.to, l.from, back);
  }

  struct Adj {
    std::vector<GraphEdge> out;
    std::vector<GraphEdge> in;
  };
  std::unordered_map<NodeId, Adj> rebuilt;
  std::unordered_set<uint64_t> emitted;
  emitted.reserve(tl.size() * 2);
  auto emit = [&](NodeId a, NodeId b) {
    if (!emitted.insert(pair_key(a, b)).second) return;
    const double w = pair_weight.at(pair_key(a, b));
    if (touched[a] != 0) rebuilt[a].out.push_back(GraphEdge{b, w});
    if (touched[b] != 0) rebuilt[b].in.push_back(GraphEdge{a, w});
  };
  for (const auto& l : tl) {
    emit(l.from, l.to);
    emit(l.to, l.from);
  }

  // 5. Prestige: indegree is the row sum of the patched counts.
  std::vector<double> weights(new_n, 0.0);
  if (options.indegree_prestige) {
    for (size_t n = 0; n < new_n; ++n) {
      uint32_t d = 0;
      for (size_t t = 0; t < num_tables; ++t) d += counts[n * num_tables + t];
      weights[n] = static_cast<double>(d);
    }
  }

  // 6. Assemble the CSR arrays: untouched spans are copied with remapped
  //    neighbour ids (a dead or re-weighted neighbour would have made the
  //    node touched); touched nodes take their rebuilt adjacency.
  std::vector<uint32_t> out_offsets(new_n + 1, 0);
  std::vector<uint32_t> in_offsets(new_n + 1, 0);
  std::vector<GraphEdge> out_edges;
  std::vector<GraphEdge> in_edges;
  out_edges.reserve(old_dg.graph.num_edges() + 2 * delta.added.size());
  in_edges.reserve(old_dg.graph.num_edges() + 2 * delta.added.size());
  static const Adj kEmptyAdj;
  for (size_t n = 0; n < new_n; ++n) {
    if (touched[n] != 0) {
      auto it = rebuilt.find(static_cast<NodeId>(n));
      const Adj& adj = it != rebuilt.end() ? it->second : kEmptyAdj;
      out_edges.insert(out_edges.end(), adj.out.begin(), adj.out.end());
      in_edges.insert(in_edges.end(), adj.in.begin(), adj.in.end());
    } else {
      const NodeId old_id = new_to_old[n];
      for (const auto& e : old_dg.graph.OutEdges(old_id)) {
        assert(old_to_new[e.to] != kInvalidNode);
        out_edges.push_back(GraphEdge{old_to_new[e.to], e.weight});
      }
      for (const auto& e : old_dg.graph.InEdges(old_id)) {
        in_edges.push_back(GraphEdge{old_to_new[e.to], e.weight});
      }
    }
    out_offsets[n + 1] = static_cast<uint32_t>(out_edges.size());
    in_offsets[n + 1] = static_cast<uint32_t>(in_edges.size());
  }

  dg.graph = FrozenGraph(std::move(out_offsets), std::move(out_edges),
                         std::move(in_offsets), std::move(in_edges),
                         std::move(weights));
  if (new_counts != nullptr) *new_counts = std::move(counts);
  return dg;
}

}  // namespace banks
