// Relation-similarity matrix and the §2.2 edge-weight formulas.
//
// "the importance of a link depends upon the type of the link, i.e. what
// relations it connects"; s(R1, R2) is the (asymmetric) similarity from
// referencing relation R1 to referenced relation R2, default 1, infinity if
// R1 does not refer to R2. Small values mean greater proximity.
#ifndef BANKS_GRAPH_EDGE_WEIGHT_H_
#define BANKS_GRAPH_EDGE_WEIGHT_H_

#include <string>
#include <unordered_map>

namespace banks {

/// Per-relation-pair link strength s(from, to). Lower = stronger link.
class SimilarityMatrix {
 public:
  /// Sets s(from_table, to_table). Weight must be > 0.
  void Set(const std::string& from_table, const std::string& to_table,
           double weight);

  /// s(from, to); defaults to 1.0 when unset (the paper's default).
  double Get(const std::string& from_table,
             const std::string& to_table) const;

  bool empty() const { return weights_.empty(); }

 private:
  std::unordered_map<std::string, double> weights_;
  static std::string Key(const std::string& a, const std::string& b) {
    return a + "\x1f" + b;
  }
};

/// How the weights of a forward and a backward candidate combine when the
/// database has FK links in *both* directions between two tuples (eq. 1).
enum class BothLinkCombine {
  kMin,                ///< min(w_fwd, w_back) — the paper's choice (eq. 1)
  kParallelResistance  ///< (w_fwd * w_back) / (w_fwd + w_back) — the
                       ///< electrical-network alternative the paper mentions
};

/// Applies the chosen combiner.
double CombineBothLinks(double a, double b, BothLinkCombine combine);

/// Backward edge weight (§2.1-2.2): for DB link u -> v (u references v),
/// the reverse edge (v -> u) weighs
///   IN_{R(u)}(v) * s(R(v), R(u))
/// where IN_{R(u)}(v) is the indegree of v contributed by tuples of u's
/// relation (paper notation: "IN_v(u) is the indegree of u contributed by
/// the tuples belonging to relation R(v)" for edge (u,v) backed by DB link
/// v->u). Degree-proportional weighting damps "hub" nodes: a department
/// referenced by many students gets heavy back edges, pushing its students
/// apart; a paper with few authors keeps its co-authors close.
double BackwardEdgeWeight(double similarity, size_t indegree_same_relation);

}  // namespace banks

#endif  // BANKS_GRAPH_EDGE_WEIGHT_H_
