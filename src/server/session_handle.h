// SessionHandle — the thread-safe face of one pooled query.
//
// SessionPool::Submit wraps a QuerySession in a ServerTask and returns a
// SessionHandle. The session itself stays *confined*: only the worker
// thread currently holding the task pumps its stepper. The handle and the
// workers meet exclusively through the task's mutex-guarded answer buffer,
// so every handle method is safe to call from any thread — including
// concurrently with the workers and with other handle calls (e.g. one
// thread blocked in NextBatch while another calls Cancel).
#ifndef BANKS_SERVER_SESSION_HANDLE_H_
#define BANKS_SERVER_SESSION_HANDLE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "core/query_session.h"
#include "util/thread_annotations.h"

namespace banks::server {

/// State shared between the submitter (through SessionHandle) and the
/// pool's workers. Lifetime is shared_ptr-managed: a handle may outlive
/// the pool and vice versa. Three ownership domains:
///   - immutable after Submit: seq, deadline, parsed, dropped_terms
///   - confined to the worker currently running the task (handed between
///     workers through the pool's scheduler lock): session, steps
///   - shared, guarded by mu: everything else
struct ServerTask {
  // ----------------------------------------------- immutable after Submit
  uint64_t seq = 0;  ///< admission order (scheduler tie-break)
  /// EDF key, taken from the session's Budget (max() = no deadline).
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  ParsedQuery parsed;                 ///< copied out of the session
  std::vector<size_t> dropped_terms;  ///< copied out of the session

  // ------------------------------------------------------ worker-confined
  // These fields carry no BANKS_GUARDED_BY: their protection is dynamic
  // ownership (exactly one worker holds the task between a scheduler pop
  // and the matching requeue, handoffs ordered by the shard locks), which
  // Clang's analysis cannot express as a static capability. The shard
  // heap itself *is* annotated (scheduler.h), so the handoff edges are
  // still machine-checked; TSan covers the confined accesses.
  /// The live query. Only the worker that popped this task from a run
  /// queue shard may touch it; handles never do. Once `finished` is set no
  /// thread touches it again.
  QuerySession session;
  /// Stepper iterations consumed so far — the scheduler's fairness key.
  /// Written by the owning worker between slices, read by the pool while
  /// the task sits in a shard (handoff through the shard lock).
  size_t steps = 0;
  /// Adaptive scheduling quantum for the *next* slice: starts at
  /// PoolOptions::initial_quantum (fast first answer) and grows
  /// geometrically up to PoolOptions::step_quantum while the session keeps
  /// running, amortizing scheduling overhead over long queries. Owned like
  /// `steps`.
  size_t quantum = 0;

  // ------------------------------------------------- shared, guarded by mu
  mutable util::Mutex mu;
  std::condition_variable cv;     ///< answers arrived / task finished
  /// Produced, not yet consumed.
  std::deque<ScoredAnswer> ready BANKS_GUARDED_BY(mu);
  /// Refreshed after every slice.
  SearchStats stats BANKS_GUARDED_BY(mu);
  /// Workers will never touch `session` again.
  bool finished BANKS_GUARDED_BY(mu) = false;
  /// Finished by cancellation (not exhaustion).
  bool cancelled BANKS_GUARDED_BY(mu) = false;

  /// Set by SessionHandle::Cancel; observed by the worker at its next
  /// slice boundary (atomic so the handle never needs the pool's lock).
  std::atomic<bool> cancel_requested{false};
};

/// Thread-safe cursor over one pooled query's answers. Copyable — copies
/// share the underlying task, so one thread can consume answers while
/// another cancels. A default-constructed handle is empty (Done() true).
class SessionHandle {
 public:
  SessionHandle() = default;

  /// Blocks until the workers produce the next answer, the stream is
  /// exhausted, or the session is cancelled (nullopt = no more answers).
  std::optional<ScoredAnswer> Next();

  /// Non-blocking: an answer if one is already buffered.
  std::optional<ScoredAnswer> TryNext();

  /// Blocks until `k` further answers arrived or the stream ended. An
  /// empty vector means no answers are left. Consumes the buffer in
  /// batches — one lock crossing per producer wakeup, not per answer.
  std::vector<ConnectionTree> NextBatch(size_t k);

  /// Blocks until the stream ends; returns everything left (batched like
  /// NextBatch).
  std::vector<ConnectionTree> Drain();

  /// Requests cancellation: buffered answers are dropped, subsequent
  /// Next/NextBatch calls return nothing (waiters wake immediately), and
  /// the worker tears the search down at its next slice boundary. Safe
  /// from any thread; idempotent.
  void Cancel();

  /// True when no further answer will ever be delivered and the buffer is
  /// empty. Non-blocking.
  bool Done() const;

  /// Blocks until the worker side is finished with the session (stream
  /// exhausted, cancelled, or pool shut down).
  void Wait() const;

  /// Snapshot of the underlying run's counters (refreshed per slice).
  SearchStats stats() const;

  /// True iff this handle carries a session.
  bool valid() const { return task_ != nullptr; }

  /// The interpreted query (immutable; safe without synchronisation).
  const ParsedQuery& parsed() const {
    static const ParsedQuery kEmpty{};
    return task_ == nullptr ? kEmpty : task_->parsed;
  }
  /// Terms dropped by partial matching (immutable).
  const std::vector<size_t>& dropped_terms() const {
    static const std::vector<size_t> kNone{};
    return task_ == nullptr ? kNone : task_->dropped_terms;
  }

 private:
  friend class SessionPool;
  explicit SessionHandle(std::shared_ptr<ServerTask> task)
      : task_(std::move(task)) {}

  std::shared_ptr<ServerTask> task_;
};

}  // namespace banks::server

#endif  // BANKS_SERVER_SESSION_HANDLE_H_
