#include "server/query_cache.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "util/hash.h"

namespace banks::server {
namespace {

// Past this many journaled tokens within one epoch the journal stops
// claiming completeness: every cross-pending validation fails until the
// next refreeze rebinds it. Purely a memory bound — correctness only ever
// degrades toward fallback.
constexpr size_t kJournalTokenCap = size_t{1} << 16;

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

void AppendU64(std::string* out, uint64_t v) {
  out->append(std::to_string(v));
  out->push_back('|');
}

void AppendF64(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
  out->push_back('|');
}

void AppendString(std::string* out, const std::string& s) {
  out->append(s);
  out->push_back('\x1f');
}

void AppendTerm(std::string* out, const QueryTerm& term) {
  out->push_back(term.kind == QueryTerm::Kind::kKeyword ? 'k' : 'n');
  AppendString(out, term.keyword);
  AppendString(out, term.attribute);
  if (term.kind == QueryTerm::Kind::kNumericApprox) {
    AppendF64(out, term.numeric_value);
    AppendF64(out, term.numeric_tolerance);
  }
}

void AppendMatchOptions(std::string* out, const MatchOptions& match) {
  out->push_back(match.include_metadata ? '1' : '0');
  out->push_back(match.approx.enable ? '1' : '0');
  AppendU64(out, match.approx.max_edit_distance);
  out->push_back(match.approx.allow_prefix ? '1' : '0');
  AppendU64(out, match.approx.max_expansions);
}

size_t EstimateBytes(const std::vector<KeywordMatch>& matches) {
  return matches.size() * sizeof(KeywordMatch);
}

size_t EstimateBytes(const CachedAnswers& v) {
  size_t bytes = sizeof(CachedAnswers);
  for (const auto& a : v.answers) {
    bytes += sizeof(ScoredAnswer) + a.tree.edges.size() * sizeof(TreeEdge) +
             a.tree.leaf_for_term.size() * sizeof(NodeId) +
             a.tree.leaf_relevance.size() * sizeof(double);
  }
  for (const auto& set : v.keyword_matches) {
    bytes += sizeof(set) + EstimateBytes(set);
  }
  bytes += v.dropped_terms.size() * sizeof(size_t);
  return bytes;
}

size_t EstimateBytes(const CachedResolution& v) {
  size_t bytes = sizeof(CachedResolution) + EstimateBytes(v.matches) +
                 v.tables.size() * sizeof(uint32_t);
  for (const auto& t : v.tokens) bytes += sizeof(t) + t.size();
  return bytes;
}

}  // namespace

// One in-flight coalesced computation. The leader sink writes it exactly
// once (published or aborted); any number of followers poll it. Followers
// keep their own shared_ptr, so the state outlives its table entry.
struct FlightState {
  enum class State { kRunning, kPublished, kAborted };
  util::Mutex mu;
  State state BANKS_GUARDED_BY(mu) = State::kRunning;
  std::vector<ScoredAnswer> answers BANKS_GUARDED_BY(mu);
  SearchStats stats BANKS_GUARDED_BY(mu);
};

namespace {

// The follower's view of a flight (core-facing AnswerFlight).
class FlightFollower final : public AnswerFlight {
 public:
  explicit FlightFollower(std::shared_ptr<FlightState> flight)
      : flight_(std::move(flight)) {}

  State Poll(std::vector<ScoredAnswer>* answers,
             SearchStats* stats) override {
    util::MutexLock lock(&flight_->mu);
    switch (flight_->state) {
      case FlightState::State::kRunning:
        return State::kRunning;
      case FlightState::State::kPublished:
        *answers = flight_->answers;  // copy: every follower adopts its own
        *stats = flight_->stats;
        return State::kPublished;
      case FlightState::State::kAborted:
        return State::kAborted;
    }
    return State::kAborted;
  }

 private:
  std::shared_ptr<FlightState> flight_;
};

// The leader's sink: admits one completed run to the cache AND publishes
// it to the flight's followers. Destruction without a publication (the
// session cancelled or truncated) aborts the flight so followers fall
// back to their own searchers — a flight can never wedge.
class FlightFill final : public AnswerCacheSink {
 public:
  FlightFill(QueryCache* cache, std::string key, uint64_t epoch,
             uint64_t pending,
             std::vector<std::vector<KeywordMatch>> keyword_matches,
             std::vector<size_t> dropped_terms,
             std::shared_ptr<FlightState> flight, std::string flight_key)
      : cache_(cache),
        key_(std::move(key)),
        epoch_(epoch),
        pending_(pending),
        keyword_matches_(std::move(keyword_matches)),
        dropped_terms_(std::move(dropped_terms)),
        flight_(std::move(flight)),
        flight_key_(std::move(flight_key)) {}

  ~FlightFill() override {
    if (published_) return;
    {
      util::MutexLock lock(&flight_->mu);
      flight_->state = FlightState::State::kAborted;
    }
    cache_->FinishFlight(flight_key_);
  }

  void Publish(std::vector<ScoredAnswer> answers,
               const SearchStats& stats) override {
    published_ = true;
    {
      // Followers first (copy), then the cache (move): a reader landing
      // between the two steps finds the result one way or the other.
      util::MutexLock lock(&flight_->mu);
      flight_->state = FlightState::State::kPublished;
      flight_->answers = answers;
      flight_->stats = stats;
    }
    CachedAnswers value;
    value.answers = std::move(answers);
    value.stats = stats;
    value.keyword_matches = std::move(keyword_matches_);
    value.dropped_terms = std::move(dropped_terms_);
    cache_->StoreAnswers(key_, epoch_, pending_, std::move(value));
    cache_->FinishFlight(flight_key_);
  }

 private:
  QueryCache* cache_;
  std::string key_;
  uint64_t epoch_;
  uint64_t pending_;
  std::vector<std::vector<KeywordMatch>> keyword_matches_;
  std::vector<size_t> dropped_terms_;
  std::shared_ptr<FlightState> flight_;
  std::string flight_key_;
  bool published_ = false;
};

}  // namespace

QueryCache::QueryCache(size_t max_bytes, size_t shards)
    : max_bytes_per_shard_(std::max<size_t>(
          1, max_bytes / RoundUpPow2(std::max<size_t>(1, shards)))),
      shard_mask_(RoundUpPow2(std::max<size_t>(1, shards)) - 1),
      shards_(shard_mask_ + 1),
      counters_(shard_mask_ + 1) {}

QueryCache::~QueryCache() = default;

std::string QueryCache::AnswerKey(const ParsedQuery& parsed,
                                  const SearchOptions& search,
                                  const MatchOptions& match) {
  std::string key = "A|";
  for (const auto& term : parsed.terms) AppendTerm(&key, term);
  key.push_back('#');
  AppendU64(&key, static_cast<uint64_t>(search.strategy));
  AppendU64(&key, search.max_answers);
  AppendU64(&key, search.output_heap_size);
  key.push_back(search.scoring.edge_log ? '1' : '0');
  key.push_back(search.scoring.node_log ? '1' : '0');
  key.push_back(search.scoring.multiplicative ? '1' : '0');
  AppendF64(&key, search.scoring.lambda);
  AppendF64(&key, search.distance_cap);
  AppendU64(&key, search.max_visits);
  std::vector<uint32_t> excluded(search.excluded_root_tables.begin(),
                                 search.excluded_root_tables.end());
  std::sort(excluded.begin(), excluded.end());
  for (uint32_t t : excluded) AppendU64(&key, t);
  key.push_back(search.exhaustive ? '1' : '0');
  AppendF64(&key, search.keyword_prestige_bias);
  AppendU64(&key, search.root_budget_factor);
  AppendU64(&key, search.frontier_size_threshold);
  key.push_back('#');
  AppendMatchOptions(&key, match);
  return key;
}

std::string QueryCache::ResolutionKey(const QueryTerm& term,
                                      const MatchOptions& match) {
  std::string key = "R|";
  AppendTerm(&key, term);
  key.push_back('#');
  AppendMatchOptions(&key, match);
  return key;
}

QueryCache::Shard& QueryCache::shard_for(const std::string& key) {
  return shards_[Fnv1a(key) & shard_mask_];
}

QueryCache::Counters& QueryCache::counters_for(const std::string& key) {
  return counters_[Fnv1a(key) & shard_mask_];
}

std::shared_ptr<const CachedAnswers> QueryCache::FindAnswers(
    const std::string& key, uint64_t epoch, uint64_t pending) {
  Shard& shard = shard_for(key);
  Counters& counters = counters_for(key);
  util::MutexLock lock(&shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    counters.misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  Entry& entry = it->second;
  if (entry.epoch != epoch || entry.pending != pending) {
    // Answer entries never revalidate: a delta edge between two
    // non-keyword nodes can create new connection trees, so only the
    // exact publication the run saw is provably equivalent.
    counters.invalidations.fetch_add(1, std::memory_order_relaxed);
    if (entry.epoch != epoch || entry.pending < pending) {
      // Dead for every future reader (pending is monotone in-epoch).
      shard.bytes -= entry.bytes;
      shard.lru.erase(entry.lru);
      shard.map.erase(it);
    }
    return nullptr;
  }
  counters.hits.fetch_add(1, std::memory_order_relaxed);
  shard.lru.splice(shard.lru.begin(), shard.lru, entry.lru);
  return entry.answers;
}

std::vector<KeywordMatch> QueryCache::ResolveThrough(
    const KeywordResolver& resolver, const QueryTerm& term,
    const MatchOptions& match, uint64_t epoch, uint64_t pending) {
  const std::string key = ResolutionKey(term, match);
  Shard& shard = shard_for(key);
  Counters& counters = counters_for(key);
  {
    util::MutexLock lock(&shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      Entry& entry = it->second;
      const bool valid =
          entry.epoch == epoch &&
          (entry.pending == pending ||
           (entry.pending < pending &&
            ResolutionStillValid(*entry.resolution, epoch, entry.pending,
                                 pending)));
      if (valid) {
        counters.resolution_hits.fetch_add(1, std::memory_order_relaxed);
        shard.lru.splice(shard.lru.begin(), shard.lru, entry.lru);
        return entry.resolution->matches;
      }
      counters.invalidations.fetch_add(1, std::memory_order_relaxed);
      if (entry.epoch != epoch || entry.pending < pending) {
        shard.bytes -= entry.bytes;
        shard.lru.erase(entry.lru);
        shard.map.erase(it);
      }
    } else {
      counters.resolution_misses.fetch_add(1, std::memory_order_relaxed);
    }
  }

  ResolutionProvenance provenance;
  CachedResolution value;
  value.matches = resolver.ResolveScored(term, match, &provenance);
  value.tokens = std::move(provenance.tokens);
  value.tables = std::move(provenance.tables);
  value.numeric = provenance.numeric;
  std::vector<KeywordMatch> matches = value.matches;
  StoreResolution(key, epoch, pending, std::move(value));
  return matches;
}

QueryCache::FlightJoin QueryCache::JoinFlight(
    std::string key, uint64_t epoch, uint64_t pending,
    std::vector<std::vector<KeywordMatch>> keyword_matches,
    std::vector<size_t> dropped_terms) {
  // The flight key binds the computation to one exact publication: a
  // mutation bumping `pending` mid-flight simply opens a fresh flight,
  // and the stale one drains out when its leader finishes.
  std::string flight_key = key;
  flight_key.push_back('@');
  flight_key.append(std::to_string(epoch));
  flight_key.push_back('/');
  flight_key.append(std::to_string(pending));

  FlightJoin join;
  util::MutexLock lock(&flights_mu_);
  auto it = flights_.find(flight_key);
  if (it != flights_.end()) {
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    join.flight = std::make_shared<FlightFollower>(it->second);
    return join;
  }
  auto flight = std::make_shared<FlightState>();
  flights_.emplace(flight_key, flight);
  join.sink = std::make_shared<FlightFill>(
      this, std::move(key), epoch, pending, std::move(keyword_matches),
      std::move(dropped_terms), std::move(flight), std::move(flight_key));
  return join;
}

void QueryCache::FinishFlight(const std::string& flight_key) {
  util::MutexLock lock(&flights_mu_);
  flights_.erase(flight_key);
}

void QueryCache::StoreAnswers(const std::string& key, uint64_t epoch,
                              uint64_t pending, CachedAnswers value) {
  Entry entry;
  entry.epoch = epoch;
  entry.pending = pending;
  entry.bytes = EstimateBytes(value) + key.size();
  entry.answers = std::make_shared<const CachedAnswers>(std::move(value));
  Shard& shard = shard_for(key);
  Counters& counters = counters_for(key);
  util::MutexLock lock(&shard.mu);
  InsertLocked(shard, counters, key, std::move(entry));
}

void QueryCache::StoreResolution(const std::string& key, uint64_t epoch,
                                 uint64_t pending, CachedResolution value) {
  Entry entry;
  entry.epoch = epoch;
  entry.pending = pending;
  entry.bytes = EstimateBytes(value) + key.size();
  entry.resolution = std::make_shared<const CachedResolution>(std::move(value));
  Shard& shard = shard_for(key);
  Counters& counters = counters_for(key);
  util::MutexLock lock(&shard.mu);
  InsertLocked(shard, counters, key, std::move(entry));
}

void QueryCache::InsertLocked(Shard& shard, Counters& counters,
                              const std::string& key, Entry entry) {
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    // Replace in place: a racing open may have stored a newer publication.
    // Keep whichever is newer so the common (latest-state) reader wins.
    Entry& old = it->second;
    if (std::make_pair(old.epoch, old.pending) >
        std::make_pair(entry.epoch, entry.pending)) {
      return;
    }
    shard.bytes -= old.bytes;
    entry.lru = old.lru;
    shard.bytes += entry.bytes;
    old = std::move(entry);
    shard.lru.splice(shard.lru.begin(), shard.lru, old.lru);
  } else {
    shard.lru.push_front(key);
    entry.lru = shard.lru.begin();
    shard.bytes += entry.bytes;
    shard.map.emplace(key, std::move(entry));
  }
  counters.insertions.fetch_add(1, std::memory_order_relaxed);
  while (shard.bytes > max_bytes_per_shard_ && shard.map.size() > 1) {
    const std::string& victim_key = shard.lru.back();
    auto victim = shard.map.find(victim_key);
    shard.bytes -= victim->second.bytes;
    shard.map.erase(victim);
    shard.lru.pop_back();
    counters.evictions.fetch_add(1, std::memory_order_relaxed);
  }
}

bool QueryCache::ResolutionStillValid(const CachedResolution& r,
                                      uint64_t epoch, uint64_t entry_pending,
                                      uint64_t pending) {
  if (r.numeric) return false;  // live column reads; no provenance tokens
  util::MutexLock lock(&journal_mu_);
  // The journal proves absence only for the epoch it is bound to, and
  // only while it kept every touched token (no overflow).
  if (journal_epoch_ != epoch || journal_overflow_) return false;
  for (const auto& token : r.tokens) {
    auto it = touched_tokens_.find(token);
    if (it != touched_tokens_.end() && it->second > entry_pending) {
      return false;
    }
  }
  for (uint32_t table : r.tables) {
    auto it = touched_tables_.find(table);
    if (it != touched_tables_.end() && it->second > entry_pending) {
      return false;
    }
  }
  (void)pending;  // validity is "untouched since entry_pending"
  return true;
}

void QueryCache::OnMutationsApplied(uint64_t epoch, uint64_t pending,
                                    const std::vector<std::string>& tokens,
                                    const std::vector<uint32_t>& tables) {
  util::MutexLock lock(&journal_mu_);
  if (journal_epoch_ != epoch) {
    // Defensive rebind (normally OnRefreeze did this already).
    journal_epoch_ = epoch;
    journal_overflow_ = false;
    touched_tokens_.clear();
    touched_tables_.clear();
  }
  for (const auto& token : tokens) touched_tokens_[token] = pending;
  for (uint32_t table : tables) touched_tables_[table] = pending;
  if (touched_tokens_.size() > kJournalTokenCap) journal_overflow_ = true;
}

size_t QueryCache::OnRefreeze(uint64_t epoch) {
  {
    util::MutexLock lock(&journal_mu_);
    journal_epoch_ = epoch;
    journal_overflow_ = false;
    touched_tokens_.clear();
    touched_tables_.clear();
  }
  size_t purged = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = shards_[i];
    util::MutexLock lock(&shard.mu);
    for (auto it = shard.map.begin(); it != shard.map.end();) {
      if (it->second.epoch != epoch) {
        shard.bytes -= it->second.bytes;
        shard.lru.erase(it->second.lru);
        it = shard.map.erase(it);
        ++purged;
        counters_[i].purged.fetch_add(1, std::memory_order_relaxed);
      } else {
        ++it;
      }
    }
  }
  return purged;
}

QueryCacheStats QueryCache::stats() const {
  QueryCacheStats out;
  for (const Counters& c : counters_) {
    out.hits += c.hits.load(std::memory_order_relaxed);
    out.misses += c.misses.load(std::memory_order_relaxed);
    out.invalidations += c.invalidations.load(std::memory_order_relaxed);
    out.resolution_hits += c.resolution_hits.load(std::memory_order_relaxed);
    out.resolution_misses +=
        c.resolution_misses.load(std::memory_order_relaxed);
    out.evictions += c.evictions.load(std::memory_order_relaxed);
    out.insertions += c.insertions.load(std::memory_order_relaxed);
    out.purged += c.purged.load(std::memory_order_relaxed);
  }
  out.coalesced = coalesced_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    util::MutexLock lock(&shard.mu);
    out.bytes += shard.bytes;
    out.entries += shard.map.size();
  }
  return out;
}

}  // namespace banks::server
