// SessionPool — concurrent query serving over one immutable graph snapshot.
//
// BANKS is an interactive system: many users fire keyword queries at one
// database at once. PR 2 made every search a resumable stepper with a
// per-run Budget; the pool multiplexes an unbounded set of those steppers
// over a fixed set of worker threads, cooperatively:
//
//   auto& pool = engine.pool();                  // starts workers lazily
//   auto handle = pool.Submit({.text = "soumen sunita",
//                              .budget = Budget::WithTimeout(50ms)});
//   for (const auto& tree : handle.value().NextBatch(10))
//     std::cout << engine.Render(tree);          // blocks as workers pump
//
// Scheduling: every worker owns a deadline-ordered shard of the run queue
// (WorkStealingScheduler). A worker pops the best runnable session from
// its own shard — stealing the most urgent one from the most-loaded peer
// when its shard is empty — pumps the session's stepper for one adaptive
// quantum, publishes the slice's answers to the session's handle in one
// batch, and requeues it on its own shard (sessions are worker-affine:
// a long query keeps its frontier hot in one core's cache). Quanta start
// small (`initial_quantum`, fast first answer) and grow geometrically to
// `step_quantum` while a session keeps running, so cheap queries stay
// snappy and long queries amortize scheduling to near zero. Deadlines are
// enforced twice — as shard-local scheduling priority and as hard Budget
// truncation inside the stepper.
//
// Admission: at most `max_active` sessions are runnable at once; the next
// `max_waiting` wait in FIFO order; beyond that Submit rejects. The caps
// bound memory and keep latency predictable under overload.
//
// Thread-safety: the pool relies on the engine's read path being an
// immutable snapshot per session — each QuerySession captures the
// LiveState pieces (graph snapshot + delta overlays) it was opened on and
// confines its mutable stepper state to one worker at a time, handed off
// through the scheduler's shard locks (a steal migrates a session wholly;
// it never shares one). Concurrent execution therefore returns *exactly*
// the answers a serial run returns, and an engine-side mutation or
// refreeze swap mid-run never perturbs sessions already open (see
// src/update/): PoolStats reports the epoch new submissions land on.
#ifndef BANKS_SERVER_SESSION_POOL_H_
#define BANKS_SERVER_SESSION_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/query_request.h"
#include "server/scheduler.h"
#include "server/session_handle.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace banks {
class BanksEngine;
}  // namespace banks

namespace banks::server {

/// Pool sizing and scheduling knobs.
struct PoolOptions {
  /// Worker threads pumping sessions. 0 = hardware concurrency.
  size_t num_workers = 0;

  /// *Maximum* stepper iterations one worker spends on a session before
  /// the scheduler re-evaluates. A session's quantum starts at
  /// `initial_quantum` and grows by `quantum_growth` per consecutive
  /// slice up to this cap, so this knob bounds the preemption (and
  /// cancellation) latency for long-running sessions. Setting it at or
  /// below `initial_quantum` yields a fixed quantum (what tests use to
  /// force constant preemption).
  size_t step_quantum = 65536;

  /// First-slice quantum: small, so a fresh session reaches its first
  /// answer (and its first deadline check) quickly. Clamped to
  /// `step_quantum`.
  size_t initial_quantum = 512;

  /// Geometric per-slice quantum growth factor for sessions that keep
  /// running (1 = fixed quantum).
  size_t quantum_growth = 4;

  /// Admission cap: sessions runnable at once. Bounds the working set.
  size_t max_active = 64;

  /// Bounded FIFO wait queue behind the admission cap; a Submit beyond
  /// both caps is rejected with StatusCode::kOverloaded (the HTTP tier
  /// maps it straight to 429).
  size_t max_waiting = 1024;
};

/// Monotone counters plus instantaneous gauges (active/waiting).
struct PoolStats {
  size_t submitted = 0;   ///< sessions accepted by Submit
  size_t rejected = 0;    ///< Submits refused (queue full / shut down)
  size_t completed = 0;   ///< sessions finished (any reason)
  size_t cancelled = 0;   ///< ... of which by Cancel or shutdown
  size_t deadline_truncated = 0;  ///< ... of which stopped by their deadline
  size_t slices = 0;      ///< scheduling quanta executed
  size_t active = 0;      ///< currently runnable or running
  size_t waiting = 0;     ///< currently queued behind the admission cap

  // Scheduler counters (slices == local_pops + steals): how the sharded
  // run queue behaved, and what the batched answer path amortized.
  size_t local_pops = 0;  ///< slices whose task came from the worker's shard
  size_t steals = 0;      ///< slices whose task was stolen from a peer shard
  size_t publishes = 0;   ///< answer-buffer publications (>=1 answer each)
  size_t answers_published = 0;  ///< answers published (/publishes = batch)
  uint64_t quantum_steps = 0;    ///< granted quanta summed (/slices = avg)

  // Live-update gauges (src/update/), sampled from the engine at stats()
  // time: which snapshot generation new submissions land on, and how much
  // delta they carry. Sessions already running may span older epochs —
  // they finish on the snapshot they opened with.
  uint64_t engine_epoch = 0;       ///< current refreeze generation
  uint64_t pending_mutations = 0;  ///< deltas awaiting the next refreeze

  // Query-cache gauges (src/server/query_cache.h), sampled from the engine
  // at stats() time; all zero when the cache is disabled.
  uint64_t cache_hits = 0;             ///< answer-entry hits (prefilled)
  uint64_t cache_misses = 0;           ///< answer probes with no entry
  uint64_t cache_invalidations = 0;    ///< stale entries dropped on probe
  uint64_t cache_resolution_hits = 0;  ///< keyword-resolution reuse
  uint64_t cache_coalesced = 0;  ///< concurrent misses joined onto one run

  // Snapshot persistence gauges (src/snapshot/), sampled from the engine:
  // the last epoch file written (SaveSnapshot / refreeze rotation) or
  // loaded (BanksEngine::FromSnapshot) and its size. Zero when snapshot
  // persistence is not in use.
  uint64_t snapshot_epoch = 0;
  uint64_t snapshot_bytes = 0;
};

/// Fixed set of worker threads multiplexing concurrent QuerySessions.
class SessionPool {
 public:
  /// Starts `options.num_workers` workers. The engine must outlive the
  /// pool (BanksEngine::pool() ties the two lifetimes together).
  explicit SessionPool(const BanksEngine& engine, PoolOptions options = {});

  /// Cancels every outstanding session and joins the workers.
  ~SessionPool();

  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  /// Opens a session (keyword resolution runs on the calling thread) and
  /// schedules it. Fails on bad queries (kInvalidArgument) and on
  /// overload (kOverloaded).
  Result<SessionHandle> Submit(const QueryRequest& request);

  /// Schedules a pre-opened session (its Budget's deadline becomes the
  /// scheduling priority). Fails on overload.
  Result<SessionHandle> Submit(QuerySession session);

  /// Cancels outstanding sessions, wakes every blocked handle, joins the
  /// workers. Idempotent; also safe to call concurrently.
  void Shutdown();

  size_t num_workers() const { return workers_.size(); }
  const PoolOptions& options() const { return options_; }

  /// Snapshot of the pool counters.
  PoolStats stats() const;

 private:
  /// Per-worker counters, written only by the owning worker (relaxed
  /// atomics so stats() may read concurrently), cache-line padded so two
  /// workers' hot increments never share a line.
  struct alignas(64) WorkerCounters {
    std::atomic<uint64_t> slices{0};
    std::atomic<uint64_t> local_pops{0};
    std::atomic<uint64_t> steals{0};
    std::atomic<uint64_t> publishes{0};
    std::atomic<uint64_t> answers_published{0};
    std::atomic<uint64_t> quantum_steps{0};
  };

  void WorkerLoop(size_t me);

  /// Outcome of one scheduling slice, classified for the counters.
  struct SliceResult {
    bool finished = false;
    bool cancelled = false;
    bool deadline_truncated = false;
    size_t answers_published = 0;
  };

  /// Pumps `task` for one quantum without holding any scheduler lock;
  /// publishes the slice's answers to the task's handle side in one batch
  /// and grows the task's quantum.
  SliceResult RunSlice(ServerTask& task);

  /// Marks a task finished (optionally as cancelled) and wakes waiters.
  static void FinishTask(ServerTask& task, bool cancelled);

  /// Retires a finished/cancelled slice: admission bookkeeping under mu_,
  /// then FinishTask.
  void RetireTask(const std::shared_ptr<ServerTask>& task,
                  const SliceResult& result);

  /// Moves waiting sessions into the run queue while capacity remains.
  void AdmitLocked() BANKS_REQUIRES(mu_);

  /// Wakes one sleeping worker if any (the push-side half of the
  /// lost-wakeup handshake; see WorkerLoop's idle path). Taps mu_, so the
  /// caller must not hold it.
  void WakeOneIfSleeping() BANKS_EXCLUDES(mu_);

  const BanksEngine* engine_;
  PoolOptions options_;

  WorkStealingScheduler sched_;
  std::vector<WorkerCounters> worker_counters_;

  /// Admission + completion state. Ordering: mu_ may be held while taking
  /// a scheduler shard lock (Submit/Shutdown push and drain under mu_);
  /// never the reverse — workers requeue without holding mu_.
  mutable util::Mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<ServerTask>> waiting_ BANKS_GUARDED_BY(mu_);
  size_t active_ BANKS_GUARDED_BY(mu_) = 0;
  uint64_t next_seq_ BANKS_GUARDED_BY(mu_) = 0;
  bool stopping_ BANKS_GUARDED_BY(mu_) = false;
  PoolStats counters_ BANKS_GUARDED_BY(mu_);
  /// Workers currently blocked on work_cv_. seq_cst ops pair with the
  /// scheduler's total_load so a push never misses a sleeper.
  std::atomic<size_t> sleepers_{0};

  util::Mutex shutdown_mu_;      // serialises Shutdown callers (join once)
  std::vector<std::thread> workers_;
};

}  // namespace banks::server

#endif  // BANKS_SERVER_SESSION_POOL_H_
