// Work-stealing deadline-aware scheduler of the session pool.
//
// The pool's first scheduler was a single mutex-guarded EDF heap; every
// scheduling slice crossed that one lock twice (pop + requeue), which the
// concurrent-sessions bench showed swamping the actual search work. This
// replacement shards the run queue per worker:
//
//   - each worker owns a local deadline-ordered queue (its *shard*) and
//     pops/requeues through the shard's own lock — uncontended on the
//     steady-state slice path;
//   - sessions are *worker-affine*: a requeued session goes back to the
//     shard of the worker that just ran it, so a long query keeps its
//     frontier state hot in one core's cache instead of round-robining
//     across the pool;
//   - an idle worker steals the most-urgent runnable session from the
//     most-loaded peer shard (approximate EDF: globally the next-deadline
//     task is not guaranteed to run next, but within every shard the order
//     is exact and steals always take a victim's *best* task, so an urgent
//     session is picked up as soon as any worker frees up);
//   - admission (SessionPool::Submit) pushes to the least-loaded shard,
//     scanning approximate per-shard load counters from a rotating start
//     index so ties don't pile onto shard 0.
//
// Per-shard scheduling policy (unchanged from the global queue):
//   1. earliest deadline first — a session whose Budget carries a
//      wall-clock deadline outranks every session with a later (or no)
//      deadline, so tight-deadline queries cut ahead of batch work;
//   2. least attained service — among equal deadlines the session that
//      has consumed the fewest stepper iterations runs next, so a heavy
//      query cannot starve cheap ones;
//   3. admission order — the final tie-break keeps each shard's order
//      total and deterministic.
//
// Confinement: only one worker holds a task between a Pop/Steal and the
// matching Push, and the shard mutexes order the handoff (the previous
// owner's writes to the session happen-before the next owner's reads,
// including across shards on a steal) — stealing migrates a session
// wholly, it never shares one.
//
// Stop protocol: RequestStop() makes every subsequent Push fail *under
// the shard lock*, so a worker requeueing a task races cleanly with
// DrainAll() — the task is either drained by the shutdown path or handed
// back to the worker to retire, never lost in a dead queue.
#ifndef BANKS_SERVER_SCHEDULER_H_
#define BANKS_SERVER_SCHEDULER_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <queue>
#include <vector>

#include "server/session_handle.h"
#include "util/thread_annotations.h"

namespace banks::server {

/// One runnable task plus the priority key it was enqueued with. The key
/// is frozen at push time (deadline and seq never change; steps advance
/// only while a worker owns the task, and the task re-enters a shard with
/// its refreshed step count).
struct RunnableTask {
  std::chrono::steady_clock::time_point deadline;
  size_t steps = 0;
  uint64_t seq = 0;
  std::shared_ptr<ServerTask> task;

  bool operator>(const RunnableTask& o) const {
    if (deadline != o.deadline) return deadline > o.deadline;
    if (steps != o.steps) return steps > o.steps;
    return seq > o.seq;
  }
};

/// Sharded run queue: one deadline-ordered shard per worker, work stealing
/// across shards (see file comment). All methods are thread-safe; the
/// heavy-path methods (Push/PopLocal/Steal) take only the one shard lock
/// they operate on.
class WorkStealingScheduler {
 public:
  explicit WorkStealingScheduler(size_t num_shards) {
    shards_.reserve(num_shards == 0 ? 1 : num_shards);
    for (size_t i = 0; i < (num_shards == 0 ? 1 : num_shards); ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  size_t num_shards() const { return shards_.size(); }

  /// Enqueues on `shard` (the requeue path: a worker gives a still-running
  /// session back to its own shard). Fails — leaving `task` untouched for
  /// the caller to retire — once RequestStop() has been called.
  bool Push(size_t shard, const std::shared_ptr<ServerTask>& task) {
    Shard& s = *shards_[shard];
    util::MutexLock lock(&s.mu);
    if (stopping_.load(std::memory_order_relaxed)) return false;
    s.heap.push(RunnableTask{task->deadline, task->steps, task->seq, task});
    s.load.store(s.heap.size(), std::memory_order_relaxed);
    total_load_.fetch_add(1);  // seq_cst: pairs with the pool's sleep check
    return true;
  }

  /// Admission path: enqueues on the least-loaded shard (ties broken from
  /// a rotating start index). Returns the shard used, or `num_shards()`
  /// if the scheduler is stopping.
  size_t PushBalanced(const std::shared_ptr<ServerTask>& task) {
    const size_t n = shards_.size();
    const size_t start = rr_.fetch_add(1, std::memory_order_relaxed) % n;
    size_t best = start;
    size_t best_load = SIZE_MAX;
    for (size_t k = 0; k < n; ++k) {
      const size_t i = (start + k) % n;
      const size_t load = shards_[i]->load.load(std::memory_order_relaxed);
      if (load < best_load) {
        best_load = load;
        best = i;
      }
    }
    return Push(best, task) ? best : n;
  }

  /// Pops the most urgent task of the worker's own shard (null if empty).
  std::shared_ptr<ServerTask> PopLocal(size_t shard) {
    return PopShard(*shards_[shard]);
  }

  /// Steals the most urgent task from the most-loaded shard other than
  /// `thief`'s own (null if no peer has runnable work). Load counters are
  /// approximate, so a raced-empty victim triggers a rescan.
  std::shared_ptr<ServerTask> Steal(size_t thief) {
    const size_t n = shards_.size();
    for (size_t attempt = 0; attempt < n; ++attempt) {
      size_t best = n;
      size_t best_load = 0;
      for (size_t i = 0; i < n; ++i) {
        if (i == thief) continue;
        const size_t load = shards_[i]->load.load(std::memory_order_relaxed);
        if (load > best_load) {
          best_load = load;
          best = i;
        }
      }
      if (best == n) return nullptr;
      if (auto task = PopShard(*shards_[best])) return task;
    }
    return nullptr;
  }

  /// Makes every subsequent Push fail. Settled under the shard locks, so
  /// after RequestStop() + DrainAll() no task can be left in a shard.
  void RequestStop() { stopping_.store(true, std::memory_order_relaxed); }

  /// Removes and returns every queued task (the shutdown path).
  std::vector<std::shared_ptr<ServerTask>> DrainAll() {
    std::vector<std::shared_ptr<ServerTask>> drained;
    for (auto& shard : shards_) {
      util::MutexLock lock(&shard->mu);
      while (!shard->heap.empty()) {
        drained.push_back(shard->heap.top().task);
        shard->heap.pop();
        total_load_.fetch_sub(1);
      }
      shard->load.store(0, std::memory_order_relaxed);
    }
    return drained;
  }

  /// Approximate queued-task count of one shard / of the whole scheduler.
  /// total_load() is exact at quiescence and is the pool's "any work?"
  /// sleep predicate.
  size_t load(size_t shard) const {
    return shards_[shard]->load.load(std::memory_order_relaxed);
  }
  size_t total_load() const { return total_load_.load(); }

 private:
  struct Shard {
    mutable util::Mutex mu;
    /// The shard's exact-EDF queue. The compiler rejects any access that
    /// does not hold the shard lock — the machine-checked half of the
    /// session-affinity invariant (handoffs are ordered by shard locks).
    std::priority_queue<RunnableTask, std::vector<RunnableTask>,
                        std::greater<RunnableTask>>
        heap BANKS_GUARDED_BY(mu);
    /// Heap size mirror, readable without the lock (victim/target choice).
    std::atomic<size_t> load{0};
  };

  std::shared_ptr<ServerTask> PopShard(Shard& s) {
    util::MutexLock lock(&s.mu);
    if (s.heap.empty()) return nullptr;
    std::shared_ptr<ServerTask> task = s.heap.top().task;
    s.heap.pop();
    s.load.store(s.heap.size(), std::memory_order_relaxed);
    total_load_.fetch_sub(1);
    return task;
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<size_t> total_load_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> rr_{0};  ///< rotating tie-break for PushBalanced
};

}  // namespace banks::server

#endif  // BANKS_SERVER_SCHEDULER_H_
