// Deadline-aware run queue of the session pool.
//
// Scheduling policy (cooperative, slice-based):
//   1. earliest deadline first — a session whose Budget carries a
//      wall-clock deadline outranks every session with a later (or no)
//      deadline, so tight-deadline queries cut ahead of batch work;
//   2. least attained service — among equal deadlines the session that
//      has consumed the fewest stepper iterations runs next, so a heavy
//      query cannot starve cheap ones (each slice re-sorts the heavy
//      query behind the light ones it has outspent);
//   3. admission order — the final tie-break keeps the order total and
//      deterministic.
//
// The queue is a plain data structure, synchronised externally by the
// pool's scheduler lock; it never blocks and never touches the tasks.
#ifndef BANKS_SERVER_SCHEDULER_H_
#define BANKS_SERVER_SCHEDULER_H_

#include <cstddef>
#include <memory>
#include <queue>
#include <vector>

#include "server/session_handle.h"

namespace banks::server {

/// One runnable task plus the priority key it was enqueued with. The key
/// is frozen at push time (deadline and seq never change; steps advance
/// only while a worker owns the task, and the task re-enters the queue
/// with its refreshed step count).
struct RunnableTask {
  std::chrono::steady_clock::time_point deadline;
  size_t steps = 0;
  uint64_t seq = 0;
  std::shared_ptr<ServerTask> task;

  bool operator>(const RunnableTask& o) const {
    if (deadline != o.deadline) return deadline > o.deadline;
    if (steps != o.steps) return steps > o.steps;
    return seq > o.seq;
  }
};

/// Min-priority run queue over RunnableTask (see policy above).
class EdfRunQueue {
 public:
  void Push(std::shared_ptr<ServerTask> task) {
    heap_.push(RunnableTask{task->deadline, task->steps, task->seq,
                            std::move(task)});
  }

  /// Pops the highest-priority runnable task (queue must be non-empty).
  std::shared_ptr<ServerTask> Pop() {
    std::shared_ptr<ServerTask> task = heap_.top().task;
    heap_.pop();
    return task;
  }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

 private:
  std::priority_queue<RunnableTask, std::vector<RunnableTask>,
                      std::greater<RunnableTask>>
      heap_;
};

}  // namespace banks::server

#endif  // BANKS_SERVER_SCHEDULER_H_
