// Epoch-keyed query/answer cache for repeated (Zipfian) keyword traffic.
//
// BANKS pays its backward-expansion cost per query even when the answer
// set is unchanged. The engine's epoch discipline makes exact invalidation
// cheap: every published LiveState carries (epoch, pending_mutations), a
// refreeze bumps the epoch, and every mid-epoch mutation bumps `pending`.
// The cache stores two kinds of entries, both keyed by a canonical string
// that folds in the parsed query and every answer-relevant SearchOptions /
// MatchOptions field:
//
//   answer entries ("A|...")
//       The complete delivered answer list (plus SearchStats and the
//       keyword-match metadata) of a run that finished with
//       Truncation::kNone, no cancellation, no authorization policy and an
//       unlimited budget. Valid ONLY on an exact (epoch, pending) match: a
//       mid-epoch delta edge between two non-keyword nodes can create new
//       connection trees, so keyword-overlap checks are unsound here.
//
//   resolution entries ("R|...")
//       One term's keyword→node-set resolution plus its provenance: the
//       expanded index tokens (approx expansion only sees the base
//       vocabulary, so the token list is epoch-static), the metadata-
//       matched table ids, and a numeric flag. Valid across *later*
//       mid-epoch deltas of the same epoch when the per-epoch mutation
//       journal proves none of the provenance tokens/tables were touched
//       after the entry was stored. Numeric resolutions read live column
//       values and never revalidate across deltas.
//
// Invalidation is driven by the RefreezeCoordinator (the only writer):
// OnMutationsApplied() records touched tokens/tables in the journal
// *before* the engine publishes the new LiveState (journal-ahead is
// conservatively sound — at worst a valid entry is rejected), and
// OnRefreeze() purges dead-epoch entries and rebinds the journal.
//
// Authorization results are never cached: policy-filtered sessions bypass
// the answer cache entirely (they may still reuse pre-auth resolutions —
// hidden-table filtering happens downstream, per consumer).
//
// Thread safety: fully internal. Shards (Fnv1a of the key) each carry a
// util::Mutex over map + LRU list; hit/miss/invalidation counters are
// cache-line-padded per-shard relaxed atomics, summed lock-free by
// stats(). Lock order: LiveState's state_mu_ (if held) -> shard/journal
// mutex; no cache method calls back into the engine.
#ifndef BANKS_SERVER_QUERY_CACHE_H_
#define BANKS_SERVER_QUERY_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/answer_stream.h"
#include "core/expansion_search_base.h"
#include "core/query.h"
#include "core/query_session.h"
#include "util/thread_annotations.h"

namespace banks::server {

struct FlightState;  // query_cache.cc: one in-flight coalesced computation

/// Aggregated cache counters (one snapshot; see PoolStats for the serving
/// view). Probes are classified exclusively: a hit, a miss (no entry), or
/// an invalidation (an entry existed but could not be proven valid).
struct QueryCacheStats {
  uint64_t hits = 0;               ///< answer-entry hits (prefilled sessions)
  uint64_t misses = 0;             ///< answer probes with no entry
  uint64_t invalidations = 0;      ///< stale entries dropped on probe
  uint64_t resolution_hits = 0;    ///< keyword-resolution reuse
  uint64_t resolution_misses = 0;  ///< resolution probes with no entry
  uint64_t evictions = 0;          ///< LRU-by-bytes evictions
  uint64_t insertions = 0;         ///< entries admitted
  uint64_t purged = 0;             ///< dead-epoch entries purged at refreeze
  uint64_t coalesced = 0;  ///< concurrent identical misses joined in-flight
  size_t bytes = 0;                ///< resident payload estimate
  size_t entries = 0;              ///< resident entry count
};

/// A completed run's deliverables, stored post-remap: replaying them must
/// be byte-identical to a live run, so the session serves them without
/// re-filtering or re-remapping.
struct CachedAnswers {
  std::vector<ScoredAnswer> answers;
  SearchStats stats;
  std::vector<std::vector<KeywordMatch>> keyword_matches;
  std::vector<size_t> dropped_terms;
};

/// One term's resolution plus the provenance the journal validates.
struct CachedResolution {
  std::vector<KeywordMatch> matches;
  std::vector<std::string> tokens;  ///< expanded index tokens (epoch-static)
  std::vector<uint32_t> tables;     ///< metadata-matched table ids
  bool numeric = false;             ///< live column reads; never revalidates
};

class QueryCache {
 public:
  /// `max_bytes` bounds the summed payload estimate (split evenly across
  /// shards); `shards` is rounded up to a power of two.
  QueryCache(size_t max_bytes, size_t shards);
  ~QueryCache();
  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  // ---------------------------------------------------------------- keys

  /// Canonical answer-entry key: parsed terms + every SearchOptions /
  /// MatchOptions field that can change the delivered answers. Two query
  /// texts that parse identically share a key.
  static std::string AnswerKey(const ParsedQuery& parsed,
                               const SearchOptions& search,
                               const MatchOptions& match);

  /// Canonical resolution-entry key for one term.
  static std::string ResolutionKey(const QueryTerm& term,
                                   const MatchOptions& match);

  // -------------------------------------------------------------- probes

  /// Answer probe at the reader's (epoch, pending). Exact-match only;
  /// a stale entry is dropped and counted as an invalidation.
  std::shared_ptr<const CachedAnswers> FindAnswers(const std::string& key,
                                                   uint64_t epoch,
                                                   uint64_t pending);

  /// Read-through resolution of one term: returns the cached matches when
  /// the journal proves them still exact for (epoch, pending), otherwise
  /// resolves live via `resolver` and admits the result. The returned
  /// matches are pre-auth — callers apply policy filtering downstream.
  std::vector<KeywordMatch> ResolveThrough(const KeywordResolver& resolver,
                                           const QueryTerm& term,
                                           const MatchOptions& match,
                                           uint64_t epoch, uint64_t pending);

  /// Join result of one cacheable miss: exactly one side is set. `sink`
  /// means this session LEADS the computation — publishing into it admits
  /// the run to the cache AND completes the flight; dropping it
  /// unpublished (cancel, truncation) aborts the flight. `flight` means
  /// an identical run is already in flight on the same (epoch, pending):
  /// the session follows it instead of searching.
  struct FlightJoin {
    std::shared_ptr<AnswerCacheSink> sink;
    std::shared_ptr<AnswerFlight> flight;
  };

  /// Registers a cacheable miss in the in-flight table (keyed by
  /// key+epoch+pending, so flights never cross publications) and returns
  /// the leader sink or the follower flight. The leader publishes only on
  /// natural, untruncated exhaustion — identical semantics to the former
  /// MakeAnswerFill, plus flight completion.
  FlightJoin JoinFlight(std::string key, uint64_t epoch, uint64_t pending,
                        std::vector<std::vector<KeywordMatch>> keyword_matches,
                        std::vector<size_t> dropped_terms);

  // ---------------------------------------- writers (lint-confined names)
  // banks_lint confines calls to these to src/server/ + src/update/: the
  // cache mutation surface stays out of the query path's own layer.

  /// Admits a completed answer list (LRU-evicting by bytes).
  void StoreAnswers(const std::string& key, uint64_t epoch, uint64_t pending,
                    CachedAnswers value);

  /// Admits one term's resolution with its provenance.
  void StoreResolution(const std::string& key, uint64_t epoch,
                       uint64_t pending, CachedResolution value);

  /// Journal hook: the coordinator applied a mutation batch; `pending` is
  /// the post-batch count and `tokens`/`tables` the touched provenance.
  /// Called BEFORE the new LiveState is published (journal-ahead).
  void OnMutationsApplied(uint64_t epoch, uint64_t pending,
                          const std::vector<std::string>& tokens,
                          const std::vector<uint32_t>& tables);

  /// Epoch hook: purges entries not keyed to `epoch` (normally all of
  /// them) and rebinds the journal. Returns the number purged.
  size_t OnRefreeze(uint64_t epoch);

  /// Removes one in-flight entry (leader publication/abort). Called by the
  /// sink JoinFlight built; sessions never call this.
  void FinishFlight(const std::string& flight_key);

  /// Counter snapshot (lock-free for the counters; shard locks are taken
  /// briefly for bytes/entries).
  QueryCacheStats stats() const;

 private:
  struct Entry {
    uint64_t epoch = 0;
    uint64_t pending = 0;
    std::shared_ptr<const CachedAnswers> answers;        // exactly one of
    std::shared_ptr<const CachedResolution> resolution;  // these is set
    size_t bytes = 0;
    std::list<std::string>::iterator lru;
  };

  struct Shard {
    mutable util::Mutex mu;
    std::unordered_map<std::string, Entry> map BANKS_GUARDED_BY(mu);
    std::list<std::string> lru BANKS_GUARDED_BY(mu);  // front = most recent
    size_t bytes BANKS_GUARDED_BY(mu) = 0;
  };

  /// Cache-line-padded per-shard counters: probes on distinct shards never
  /// share a line, and stats() sums without taking any lock.
  struct alignas(64) Counters {
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> invalidations{0};
    std::atomic<uint64_t> resolution_hits{0};
    std::atomic<uint64_t> resolution_misses{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> insertions{0};
    std::atomic<uint64_t> purged{0};
  };

  Shard& shard_for(const std::string& key);
  Counters& counters_for(const std::string& key);

  /// True iff a resolution entry stored at `entry_pending` is provably
  /// exact at `pending` of the same `epoch`.
  bool ResolutionStillValid(const CachedResolution& r, uint64_t epoch,
                            uint64_t entry_pending, uint64_t pending);

  void InsertLocked(Shard& shard, Counters& counters, const std::string& key,
                    Entry entry) BANKS_REQUIRES(shard.mu);

  const size_t max_bytes_per_shard_;
  const size_t shard_mask_;
  std::vector<Shard> shards_;
  std::vector<Counters> counters_;

  // In-flight answer computations keyed by key+epoch+pending. Entries are
  // created by JoinFlight's leader side and erased by the leader sink on
  // publication or abort; followers hold their own shared_ptr to the
  // state, so a finished flight stays pollable after its table entry dies.
  mutable util::Mutex flights_mu_;
  std::unordered_map<std::string, std::shared_ptr<FlightState>> flights_
      BANKS_GUARDED_BY(flights_mu_);
  std::atomic<uint64_t> coalesced_{0};

  // Per-epoch mutation journal: last pending count at which each token /
  // table id was touched. Bound to one epoch at a time; a probe whose
  // epoch differs from journal_epoch_ cannot be proven and falls back.
  mutable util::Mutex journal_mu_;
  uint64_t journal_epoch_ BANKS_GUARDED_BY(journal_mu_) = 0;
  bool journal_overflow_ BANKS_GUARDED_BY(journal_mu_) = false;
  std::unordered_map<std::string, uint64_t> touched_tokens_
      BANKS_GUARDED_BY(journal_mu_);
  std::unordered_map<uint32_t, uint64_t> touched_tables_
      BANKS_GUARDED_BY(journal_mu_);
};

}  // namespace banks::server

#endif  // BANKS_SERVER_QUERY_CACHE_H_
