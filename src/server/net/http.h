// Minimal HTTP/1.1 request reader and response writer.
//
// Just enough protocol for the BANKS serving tier: request line + headers +
// Content-Length bodies on the way in; fixed bodies or chunked
// transfer-encoding (one flush per chunk, so streamed answers leave the
// process the moment the engine emits them) on the way out. No TLS, no
// compression, no multipart — the serving tier is an engine front-end, not
// a general web server.
#ifndef BANKS_SERVER_NET_HTTP_H_
#define BANKS_SERVER_NET_HTTP_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "server/net/socket.h"
#include "util/status.h"

namespace banks::server::net {

/// One parsed request. Header names are lowercased at parse time so lookup
/// is case-insensitive per RFC 9110 without repeated folding.
struct HttpRequest {
  std::string method;   // "GET", "POST", ... (verbatim, upper-case expected)
  std::string target;   // request target, e.g. "/query"
  std::string version;  // "HTTP/1.1" or "HTTP/1.0"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;

  /// `name` must already be lowercase. Returns nullptr when absent.
  const std::string* FindHeader(std::string_view name) const;
};

/// Caps on attacker-controlled sizes; exceeding either aborts the
/// connection with kTooLarge before the oversized data is buffered.
struct HttpLimits {
  size_t max_header_bytes = 64 << 10;
  size_t max_body_bytes = 1 << 20;
};

enum class ReadResult {
  kRequest,    // *out is a complete request
  kClosed,     // peer closed cleanly between requests (keep-alive end)
  kMalformed,  // unparseable head / bad Content-Length — send 400 and close
  kTooLarge,   // a limit in HttpLimits was exceeded — send 431/413 and close
  kIoError,    // recv failed mid-request (peer reset, shutdown)
};

/// Parses a full request head (request line + headers, no body) from
/// `head`, which excludes the terminating blank line. Split out from socket
/// reading so the parser is unit-testable without a connection.
Status ParseRequestHead(std::string_view head, HttpRequest* out);

/// Reads one request from `sock`. `carry` holds bytes received past the end
/// of the previous request on this connection (keep-alive pipelining) and
/// is updated for the next call; pass the same string for the connection's
/// lifetime, starting empty.
ReadResult ReadHttpRequest(const Socket& sock, std::string* carry,
                           HttpRequest* out, const HttpLimits& limits);

/// Writes one response to a socket, either as a single fixed-length body
/// (SendFull) or as a chunked stream (BeginChunked / WriteChunk* /
/// EndChunked). Every WriteChunk hits the wire immediately — with
/// TCP_NODELAY on the connection, that is the tier's streaming contract:
/// answer k is observable by the client before answer k+1 is computed.
class HttpResponseWriter {
 public:
  explicit HttpResponseWriter(const Socket* sock) : sock_(sock) {}

  /// Complete response with Content-Length. Returns false on send failure.
  bool SendFull(int status, std::string_view content_type,
                std::string_view body, bool keep_alive);

  /// Starts a chunked response. Follow with WriteChunk, then EndChunked.
  bool BeginChunked(int status, std::string_view content_type,
                    bool keep_alive);
  /// One chunk, flushed immediately. Empty data is a no-op (an empty chunk
  /// would terminate the stream). Returns false once the peer is gone.
  bool WriteChunk(std::string_view data);
  /// Terminal zero-length chunk.
  bool EndChunked();

  /// False after any send failed; the connection must then be dropped.
  bool ok() const { return ok_; }
  /// True between BeginChunked and EndChunked.
  bool streaming() const { return streaming_; }

  static const char* ReasonPhrase(int status);

 private:
  const Socket* sock_;
  bool ok_ = true;
  bool streaming_ = false;
};

}  // namespace banks::server::net

#endif  // BANKS_SERVER_NET_HTTP_H_
