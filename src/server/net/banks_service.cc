#include "server/net/banks_service.h"

#include <chrono>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "server/query_cache.h"
#include "update/mutation.h"
#include "util/json.h"

namespace banks::server::net {

namespace {

/// Status -> HTTP mapping; the typed StatusCodeName still rides along in
/// the error body, so clients can distinguish e.g. the two 409 causes.
int HttpStatusFor(StatusCode code) {
  switch (code) {
    case StatusCode::kInvalidArgument:    return 400;
    case StatusCode::kNotFound:           return 404;
    case StatusCode::kAlreadyExists:
    case StatusCode::kFailedPrecondition: return 409;
    case StatusCode::kOverloaded:         return 429;
    case StatusCode::kUnimplemented:      return 501;
    default:                              return 500;
  }
}

std::string ErrorBody(const Status& status) {
  std::string out = "{\"error\":{\"code\":";
  JsonAppendQuoted(&out, StatusCodeName(status.code()));
  out += ",\"status\":" + std::to_string(HttpStatusFor(status.code()));
  out += ",\"message\":";
  JsonAppendQuoted(&out, status.message());
  out += "}}\n";
  return out;
}

void SendError(HttpResponseWriter& writer, const Status& status,
               bool keep_alive) {
  writer.SendFull(HttpStatusFor(status.code()), "application/json",
                  ErrorBody(status), keep_alive);
}

const char* TruncationName(Truncation t) {
  switch (t) {
    case Truncation::kNone:        return "none";
    case Truncation::kVisitBudget: return "visits";
    case Truncation::kDeadline:    return "deadline";
  }
  return "none";
}

void AppendKeyValue(std::string* out, const char* key, uint64_t value,
                    bool* first) {
  if (!*first) *out += ',';
  *first = false;
  JsonAppendQuoted(out, key);
  *out += ':' + std::to_string(value);
}

/// `members` whose keys are not in `allowed` make the request a typed 400:
/// a misspelled knob silently falling back to a default would be the worst
/// failure mode an over-the-wire budget can have.
Status RejectUnknownFields(const JsonValue& object,
                           std::initializer_list<std::string_view> allowed) {
  for (const auto& [key, value] : object.members()) {
    (void)value;
    bool known = false;
    for (std::string_view name : allowed) known = known || key == name;
    if (!known) {
      return Status::InvalidArgument("unknown field \"" + key + "\"");
    }
  }
  return Status::OK();
}

Result<double> RequireNumber(const JsonValue& v, const char* field) {
  if (!v.is_number()) {
    return Status::InvalidArgument(std::string(field) + " must be a number");
  }
  return v.number_value();
}

Result<bool> RequireBool(const JsonValue& v, const char* field) {
  if (!v.is_bool()) {
    return Status::InvalidArgument(std::string(field) + " must be a boolean");
  }
  return v.bool_value();
}

/// JSON numbers with an exact integral value land as INT, everything else
/// as DOUBLE (JSON does not distinguish; the tuple column type does).
Value ValueFromJson(const JsonValue& v) {
  if (v.is_string()) return Value(v.string_value());
  double d = v.number_value();
  if (std::nearbyint(d) == d && std::abs(d) < 9007199254740992.0) {
    return Value(static_cast<int64_t>(d));
  }
  return Value(d);
}

}  // namespace

BanksService::BanksService(BanksEngine* engine, BanksServiceOptions options)
    : engine_(engine), options_(std::move(options)) {
  // Start the pool eagerly with the service's sizing so the first request
  // does not race an engine-default pool() call elsewhere in the process.
  engine_->pool(options_.pool);
}

void BanksService::Handle(const HttpRequest& request,
                          HttpResponseWriter& writer) {
  std::string_view path = request.target;
  if (size_t q = path.find('?'); q != std::string_view::npos) {
    path = path.substr(0, q);
  }
  struct Route {
    std::string_view path;
    std::string_view method;
    void (BanksService::*handler)(const HttpRequest&, HttpResponseWriter&);
  };
  static constexpr Route kRoutes[] = {
      {"/query", "POST", &BanksService::HandleQuery},
      {"/stats", "GET", &BanksService::HandleStats},
      {"/mutate", "POST", &BanksService::HandleMutate},
      {"/refreeze", "POST", &BanksService::HandleRefreeze},
      {"/snapshot", "POST", &BanksService::HandleSnapshot},
  };
  for (const Route& route : kRoutes) {
    if (route.path != path) continue;
    if (route.method != request.method) {
      writer.SendFull(405, "application/json",
                      ErrorBody(Status::InvalidArgument(
                          std::string(route.method) + " required for " +
                          std::string(route.path))),
                      request.keep_alive);
      return;
    }
    (this->*route.handler)(request, writer);
    return;
  }
  SendError(writer, Status::NotFound("no such endpoint: " + request.target),
            request.keep_alive);
}

std::string BanksService::AnswerJson(const BanksEngine& engine,
                                     const ConnectionTree& tree, size_t rank,
                                     bool render) {
  std::string out = "{\"rank\":" + std::to_string(rank);
  out += ",\"root\":" + std::to_string(tree.root);
  out += ",\"root_label\":";
  JsonAppendQuoted(&out, engine.RootLabel(tree));
  out += ",\"relevance\":";
  JsonAppendNumber(&out, tree.relevance);
  out += ",\"tree_weight\":";
  JsonAppendNumber(&out, tree.tree_weight);
  out += ",\"edges\":[";
  for (size_t i = 0; i < tree.edges.size(); ++i) {
    if (i > 0) out += ',';
    out += '[' + std::to_string(tree.edges[i].from) + ',' +
           std::to_string(tree.edges[i].to) + ',';
    JsonAppendNumber(&out, tree.edges[i].weight);
    out += ']';
  }
  out += "],\"leaf_for_term\":[";
  for (size_t i = 0; i < tree.leaf_for_term.size(); ++i) {
    if (i > 0) out += ',';
    // kInvalidNode marks a term dropped by partial matching.
    if (tree.leaf_for_term[i] == kInvalidNode) {
      out += "null";
    } else {
      out += std::to_string(tree.leaf_for_term[i]);
    }
  }
  out += "],\"leaf_relevance\":[";
  for (size_t i = 0; i < tree.leaf_relevance.size(); ++i) {
    if (i > 0) out += ',';
    JsonAppendNumber(&out, tree.leaf_relevance[i]);
  }
  out += ']';
  if (render) {
    out += ",\"rendered\":";
    JsonAppendQuoted(&out, engine.Render(tree));
  }
  out += '}';
  return out;
}

void BanksService::HandleQuery(const HttpRequest& request,
                               HttpResponseWriter& writer) {
  auto body = JsonValue::Parse(request.body);
  if (!body.ok()) {
    SendError(writer, body.status(), request.keep_alive);
    return;
  }
  const JsonValue& object = body.value();
  if (!object.is_object()) {
    SendError(writer,
              Status::InvalidArgument("request body must be a JSON object"),
              request.keep_alive);
    return;
  }
  if (Status unknown = RejectUnknownFields(
          object, {"text", "deadline_ms", "max_visits", "max_answers",
                   "strategy", "include_metadata", "hide_tables", "render"});
      !unknown.ok()) {
    SendError(writer, unknown, request.keep_alive);
    return;
  }

  QueryRequest query;
  const JsonValue* text = object.Find("text");
  if (text == nullptr || !text->is_string()) {
    SendError(writer,
              Status::InvalidArgument("\"text\" (string) is required"),
              request.keep_alive);
    return;
  }
  query.text = text->string_value();

  // Budget: deadline_ms / max_visits map straight onto the per-session
  // Budget the stepper enforces (one-step overshoot contract).
  if (const JsonValue* v = object.Find("deadline_ms")) {
    auto ms = RequireNumber(*v, "deadline_ms");
    if (!ms.ok()) return SendError(writer, ms.status(), request.keep_alive);
    if (ms.value() < 0) {
      return SendError(writer,
                       Status::InvalidArgument("deadline_ms must be >= 0"),
                       request.keep_alive);
    }
    query.budget.deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(static_cast<int64_t>(ms.value() * 1000.0));
  }
  if (const JsonValue* v = object.Find("max_visits")) {
    auto n = RequireNumber(*v, "max_visits");
    if (!n.ok()) return SendError(writer, n.status(), request.keep_alive);
    query.budget.max_visits = static_cast<size_t>(n.value());
  }

  if (object.Find("max_answers") != nullptr ||
      object.Find("strategy") != nullptr) {
    SearchOptions search = engine_->options().search;
    if (const JsonValue* v = object.Find("max_answers")) {
      auto n = RequireNumber(*v, "max_answers");
      if (!n.ok()) return SendError(writer, n.status(), request.keep_alive);
      if (n.value() < 1) {
        return SendError(writer,
                         Status::InvalidArgument("max_answers must be >= 1"),
                         request.keep_alive);
      }
      search.max_answers = static_cast<size_t>(n.value());
    }
    if (const JsonValue* v = object.Find("strategy")) {
      if (!v->is_string() ||
          !ParseSearchStrategy(v->string_value(), &search.strategy)) {
        return SendError(
            writer,
            Status::InvalidArgument(std::string("strategy must be one of ") +
                                    SearchStrategyNames()),
            request.keep_alive);
      }
    }
    query.search = search;
  }

  if (const JsonValue* v = object.Find("include_metadata")) {
    auto b = RequireBool(*v, "include_metadata");
    if (!b.ok()) return SendError(writer, b.status(), request.keep_alive);
    MatchOptions match = engine_->options().match;
    match.include_metadata = b.value();
    query.match = match;
  }

  if (const JsonValue* v = object.Find("hide_tables")) {
    if (!v->is_array()) {
      return SendError(
          writer, Status::InvalidArgument("hide_tables must be an array"),
          request.keep_alive);
    }
    AuthPolicy policy;
    for (const JsonValue& name : v->items()) {
      if (!name.is_string()) {
        return SendError(
            writer,
            Status::InvalidArgument("hide_tables entries must be strings"),
            request.keep_alive);
      }
      policy.HideTable(name.string_value());
    }
    query.auth = std::move(policy);
  }

  bool render = false;
  if (const JsonValue* v = object.Find("render")) {
    auto b = RequireBool(*v, "render");
    if (!b.ok()) return SendError(writer, b.status(), request.keep_alive);
    render = b.value();
  }

  auto handle = engine_->SubmitQuery(query);
  if (!handle.ok()) {
    SendError(writer, handle.status(), request.keep_alive);
    return;
  }

  // Stream: one NDJSON line per answer, flushed as the pool publishes it.
  if (!writer.BeginChunked(200, "application/x-ndjson", request.keep_alive)) {
    handle.value().Cancel();
    return;
  }
  size_t answers = 0;
  while (auto answer = handle.value().Next()) {
    std::string line =
        AnswerJson(*engine_, answer->tree, answer->rank, render);
    line += '\n';
    ++answers;
    if (!writer.WriteChunk(line)) {
      // Peer went away mid-stream: abandon the search instead of
      // computing answers nobody will read.
      handle.value().Cancel();
      return;
    }
  }
  SearchStats stats = handle.value().stats();
  std::string summary = "{\"done\":true,\"answers\":" +
                        std::to_string(answers) +
                        ",\"visits\":" + std::to_string(stats.iterator_visits);
  summary += ",\"truncation\":";
  JsonAppendQuoted(&summary, TruncationName(stats.truncation));
  summary += ",\"dropped_terms\":[";
  const std::vector<size_t>& dropped = handle.value().dropped_terms();
  for (size_t i = 0; i < dropped.size(); ++i) {
    if (i > 0) summary += ',';
    summary += std::to_string(dropped[i]);
  }
  summary += "]}\n";
  writer.WriteChunk(summary);
  writer.EndChunked();
}

void BanksService::HandleStats(const HttpRequest& request,
                               HttpResponseWriter& writer) {
  PoolStats pool = engine_->pool().stats();
  QueryCacheStats cache = engine_->query_cache_stats();

  std::string out = "{\"pool\":{";
  bool first = true;
  AppendKeyValue(&out, "submitted", pool.submitted, &first);
  AppendKeyValue(&out, "rejected", pool.rejected, &first);
  AppendKeyValue(&out, "completed", pool.completed, &first);
  AppendKeyValue(&out, "cancelled", pool.cancelled, &first);
  AppendKeyValue(&out, "deadline_truncated", pool.deadline_truncated, &first);
  AppendKeyValue(&out, "slices", pool.slices, &first);
  AppendKeyValue(&out, "active", pool.active, &first);
  AppendKeyValue(&out, "waiting", pool.waiting, &first);
  AppendKeyValue(&out, "local_pops", pool.local_pops, &first);
  AppendKeyValue(&out, "steals", pool.steals, &first);
  AppendKeyValue(&out, "publishes", pool.publishes, &first);
  AppendKeyValue(&out, "answers_published", pool.answers_published, &first);
  out += "},\"engine\":{";
  first = true;
  AppendKeyValue(&out, "epoch", engine_->epoch(), &first);
  AppendKeyValue(&out, "pending_mutations", engine_->pending_mutations(),
                 &first);
  AppendKeyValue(&out, "total_mutations", engine_->total_mutations(), &first);
  AppendKeyValue(&out, "snapshot_epoch", engine_->snapshot_epoch(), &first);
  AppendKeyValue(&out, "snapshot_bytes", engine_->snapshot_bytes(), &first);
  out += "},\"cache\":{";
  first = true;
  AppendKeyValue(&out, "hits", cache.hits, &first);
  AppendKeyValue(&out, "misses", cache.misses, &first);
  AppendKeyValue(&out, "invalidations", cache.invalidations, &first);
  AppendKeyValue(&out, "resolution_hits", cache.resolution_hits, &first);
  AppendKeyValue(&out, "coalesced", cache.coalesced, &first);
  AppendKeyValue(&out, "evictions", cache.evictions, &first);
  AppendKeyValue(&out, "entries", cache.entries, &first);
  AppendKeyValue(&out, "bytes", cache.bytes, &first);
  out += '}';
  if (options_.server_stats) {
    HttpServerStats server = options_.server_stats();
    out += ",\"server\":{";
    first = true;
    AppendKeyValue(&out, "accepted", server.accepted, &first);
    AppendKeyValue(&out, "requests", server.requests, &first);
    AppendKeyValue(&out, "rejected_503", server.rejected_503, &first);
    AppendKeyValue(&out, "parse_errors", server.parse_errors, &first);
    AppendKeyValue(&out, "active_connections", server.active_connections,
                   &first);
    out += '}';
  }
  {
    util::MutexLock lock(&refreeze_mu_);
    if (have_last_refreeze_) {
      out += ",\"last_refreeze\":{";
      first = true;
      AppendKeyValue(&out, "epoch", last_refreeze_.epoch, &first);
      AppendKeyValue(&out, "mutations_absorbed",
                     last_refreeze_.mutations_absorbed, &first);
      AppendKeyValue(&out, "merged", last_refreeze_.merged ? 1 : 0, &first);
      out += '}';
    }
  }
  out += "}\n";
  writer.SendFull(200, "application/json", out, request.keep_alive);
}

void BanksService::HandleMutate(const HttpRequest& request,
                                HttpResponseWriter& writer) {
  auto body = JsonValue::Parse(request.body);
  if (!body.ok()) {
    SendError(writer, body.status(), request.keep_alive);
    return;
  }
  const JsonValue* list = body.value().Find("mutations");
  if (!body.value().is_object() || list == nullptr || !list->is_array()) {
    SendError(
        writer,
        Status::InvalidArgument("body must be {\"mutations\": [...]}"),
        request.keep_alive);
    return;
  }
  if (Status unknown = RejectUnknownFields(body.value(), {"mutations"});
      !unknown.ok()) {
    SendError(writer, unknown, request.keep_alive);
    return;
  }

  std::vector<Mutation> mutations;
  mutations.reserve(list->items().size());
  for (const JsonValue& m : list->items()) {
    const JsonValue* op = m.Find("op");
    const JsonValue* table = m.Find("table");
    if (!m.is_object() || op == nullptr || !op->is_string() ||
        table == nullptr || !table->is_string()) {
      SendError(writer,
                Status::InvalidArgument(
                    "each mutation needs \"op\" and \"table\" strings"),
                request.keep_alive);
      return;
    }
    const std::string& kind = op->string_value();
    if (kind == "insert") {
      const JsonValue* values = m.Find("values");
      if (values == nullptr || !values->is_array()) {
        SendError(writer,
                  Status::InvalidArgument("insert needs \"values\" array"),
                  request.keep_alive);
        return;
      }
      std::vector<Value> tuple;
      tuple.reserve(values->items().size());
      for (const JsonValue& v : values->items()) {
        if (!v.is_string() && !v.is_number() && !v.is_null()) {
          SendError(writer,
                    Status::InvalidArgument(
                        "tuple values must be strings, numbers, or null"),
                    request.keep_alive);
          return;
        }
        tuple.push_back(v.is_null() ? Value::Null() : ValueFromJson(v));
      }
      mutations.push_back(
          Mutation::Insert(table->string_value(), Tuple(std::move(tuple))));
      continue;
    }
    // delete/update address an existing row: resolve the table name here
    // so a typo is a typed 404 for the whole batch, not a half-applied one.
    auto table_id = engine_->TableId(table->string_value());
    if (!table_id.ok()) {
      SendError(writer, table_id.status(), request.keep_alive);
      return;
    }
    const JsonValue* row = m.Find("row");
    if (row == nullptr || !row->is_number()) {
      SendError(writer,
                Status::InvalidArgument(kind + " needs a numeric \"row\""),
                request.keep_alive);
      return;
    }
    Rid rid{table_id.value(), static_cast<uint32_t>(row->number_value())};
    if (kind == "delete") {
      mutations.push_back(Mutation::Delete(rid));
    } else if (kind == "update") {
      const JsonValue* column = m.Find("column");
      const JsonValue* value = m.Find("value");
      if (column == nullptr || !column->is_string() || value == nullptr ||
          (!value->is_string() && !value->is_number())) {
        SendError(writer,
                  Status::InvalidArgument(
                      "update needs \"column\" (string) and \"value\""),
                  request.keep_alive);
        return;
      }
      mutations.push_back(Mutation::Update(rid, column->string_value(),
                                           ValueFromJson(*value)));
    } else {
      SendError(writer,
                Status::InvalidArgument("unknown op \"" + kind +
                                        "\" (insert|delete|update)"),
                request.keep_alive);
      return;
    }
  }

  std::vector<Result<Rid>> results = engine_->ApplyBatch(std::move(mutations));
  std::string out = "{\"results\":[";
  for (size_t i = 0; i < results.size(); ++i) {
    if (i > 0) out += ',';
    if (results[i].ok()) {
      out += "{\"ok\":true,\"table\":" +
             std::to_string(results[i].value().table_id) +
             ",\"row\":" + std::to_string(results[i].value().row) + '}';
    } else {
      out += "{\"ok\":false,\"code\":";
      JsonAppendQuoted(&out, StatusCodeName(results[i].status().code()));
      out += ",\"message\":";
      JsonAppendQuoted(&out, results[i].status().message());
      out += '}';
    }
  }
  out += "],\"epoch\":" + std::to_string(engine_->epoch());
  out += ",\"pending\":" + std::to_string(engine_->pending_mutations());
  out += "}\n";
  writer.SendFull(200, "application/json", out, request.keep_alive);
}

void BanksService::HandleRefreeze(const HttpRequest& request,
                                  HttpResponseWriter& writer) {
  bool force = false;
  if (!request.body.empty()) {
    auto body = JsonValue::Parse(request.body);
    if (!body.ok()) {
      SendError(writer, body.status(), request.keep_alive);
      return;
    }
    if (Status unknown = RejectUnknownFields(body.value(), {"force"});
        !unknown.ok()) {
      SendError(writer, unknown, request.keep_alive);
      return;
    }
    if (const JsonValue* v = body.value().Find("force")) {
      auto b = RequireBool(*v, "force");
      if (!b.ok()) return SendError(writer, b.status(), request.keep_alive);
      force = b.value();
    }
  }
  auto stats = engine_->Refreeze(force);
  if (!stats.ok()) {
    SendError(writer, stats.status(), request.keep_alive);
    return;
  }
  {
    util::MutexLock lock(&refreeze_mu_);
    have_last_refreeze_ = true;
    last_refreeze_ = stats.value();
  }
  std::string out = "{\"epoch\":" + std::to_string(stats.value().epoch);
  out += ",\"mutations_absorbed\":" +
         std::to_string(stats.value().mutations_absorbed);
  out += ",\"nodes\":" + std::to_string(stats.value().nodes);
  out += ",\"edges\":" + std::to_string(stats.value().edges);
  out += ",\"merged\":" + std::string(stats.value().merged ? "true" : "false");
  out += ",\"rebuild_ms\":";
  JsonAppendNumber(&out, stats.value().rebuild_ms);
  out += "}\n";
  writer.SendFull(200, "application/json", out, request.keep_alive);
}

void BanksService::HandleSnapshot(const HttpRequest& request,
                                  HttpResponseWriter& writer) {
  auto body = JsonValue::Parse(request.body);
  if (!body.ok()) {
    SendError(writer, body.status(), request.keep_alive);
    return;
  }
  const JsonValue* path = body.value().Find("path");
  if (!body.value().is_object() || path == nullptr || !path->is_string()) {
    SendError(writer,
              Status::InvalidArgument("body must be {\"path\": \"...\"}"),
              request.keep_alive);
    return;
  }
  if (Status unknown = RejectUnknownFields(body.value(), {"path"});
      !unknown.ok()) {
    SendError(writer, unknown, request.keep_alive);
    return;
  }
  auto stats = engine_->SaveSnapshot(path->string_value());
  if (!stats.ok()) {
    SendError(writer, stats.status(), request.keep_alive);
    return;
  }
  std::string out = "{\"epoch\":" + std::to_string(stats.value().epoch);
  out += ",\"file_bytes\":" + std::to_string(stats.value().file_bytes);
  out += ",\"write_ms\":";
  JsonAppendNumber(&out, stats.value().write_ms);
  out += "}\n";
  writer.SendFull(200, "application/json", out, request.keep_alive);
}

}  // namespace banks::server::net
