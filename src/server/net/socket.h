// RAII TCP sockets for the HTTP serving tier.
//
// This is the ONLY translation unit in the repository allowed to issue
// socket syscalls (socket/bind/listen/accept/connect/send/recv) — a repo
// invariant enforced by tools/banks_lint.py, mirroring the mmap rule that
// confines file mapping to src/snapshot/. Everything above (http.cc, the
// server loop, benches, tests) talks to the network through this wrapper,
// so ownership (close-on-destruct) and signal handling (MSG_NOSIGNAL, no
// SIGPIPE) are decided in exactly one place.
#ifndef BANKS_SERVER_NET_SOCKET_H_
#define BANKS_SERVER_NET_SOCKET_H_

#include <cstdint>
#include <string_view>

#include "util/status.h"

namespace banks::server::net {

/// One owned TCP socket file descriptor (listener or connection).
/// Move-only; the destructor closes. I/O methods are const (they do not
/// change which fd is owned) and may be used concurrently with
/// ShutdownBoth() from another thread — that is how the server unblocks
/// workers parked in recv()/accept() at shutdown.
class Socket {
 public:
  Socket() = default;  // invalid (fd -1); Recv/Send fail cleanly
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Creates a listening socket on `port` (0 = kernel-assigned, see
  /// LocalPort), bound to all interfaces, SO_REUSEADDR set.
  static Result<Socket> Listen(uint16_t port, int backlog = 128);

  /// Connects to 127.0.0.1:`port` (tests and the in-process bench client).
  static Result<Socket> ConnectLoopback(uint16_t port);

  /// Blocks for the next connection; TCP_NODELAY is set on it so streamed
  /// answer chunks leave immediately. Fails once ShutdownBoth() was
  /// called on the listener.
  Result<Socket> Accept() const;

  /// The locally-bound port (resolves kernel-assigned port 0).
  uint16_t LocalPort() const;

  /// Reads up to `len` bytes. >0 = bytes read, 0 = peer closed,
  /// -1 = error (EINTR is retried internally).
  long Recv(char* buf, size_t len) const;

  /// Writes all of `data` (looping over short writes; EINTR retried;
  /// MSG_NOSIGNAL so a dead peer is a false return, not a SIGPIPE).
  bool SendAll(std::string_view data) const;

  /// shutdown(SHUT_RDWR): unblocks any thread parked in Accept/Recv on
  /// this socket. Does not close the fd (the owner still does).
  void ShutdownBoth() const;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

 private:
  explicit Socket(int fd) : fd_(fd) {}
  void Close();

  int fd_ = -1;
};

}  // namespace banks::server::net

#endif  // BANKS_SERVER_NET_SOCKET_H_
