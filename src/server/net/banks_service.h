// BanksService — the HTTP/JSON protocol over one BanksEngine.
//
// Wire protocol (all bodies JSON; errors are
// `{"error":{"code":<StatusCodeName>,"status":<http>,"message":...}}`):
//
//   POST /query     {"text": "soumen sunita", "deadline_ms": 50,
//                    "max_visits": N, "max_answers": K,
//                    "strategy": "backward|forward|bidirectional",
//                    "include_metadata": bool, "hide_tables": [...],
//                    "render": bool}
//     -> 200, Transfer-Encoding: chunked, application/x-ndjson. One JSON
//        object per answer, flushed as the engine emits it (the streaming
//        §3 contract over the wire), then one summary line
//        {"done":true,"answers":N,"visits":V,"truncation":...,
//         "dropped_terms":[...]}.
//     -> 429 when the SessionPool's admission queue is full (kOverloaded).
//   GET  /stats     -> pool/engine/cache/server counters.
//   POST /mutate    {"mutations":[{"op":"insert","table":T,"values":[..]},
//                    {"op":"delete","table":T,"row":R},
//                    {"op":"update","table":T,"row":R,"column":C,
//                     "value":V}]} -> per-slot results + epoch/pending.
//   POST /refreeze  {"force": bool}? -> RefreezeStats.
//   POST /snapshot  {"path": "..."} -> SnapshotWriteStats.
//
// Unset query fields fall back to the engine defaults — the JSON surface
// is a 1:1 image of QueryRequest (core/query_request.h); every field the
// engine API exposes is reachable over the wire and nothing else is.
#ifndef BANKS_SERVER_NET_BANKS_SERVICE_H_
#define BANKS_SERVER_NET_BANKS_SERVICE_H_

#include <functional>
#include <string>

#include "core/banks.h"
#include "server/net/http.h"
#include "server/net/http_server.h"
#include "server/session_pool.h"
#include "util/thread_annotations.h"

namespace banks::server::net {

struct BanksServiceOptions {
  /// Pool configuration used when this service starts the engine's pool
  /// (first starter wins — see BanksEngine::pool(options)).
  PoolOptions pool;

  /// When set, GET /stats also reports the transport's counters. Wired up
  /// by the binary after it constructs the HttpServer (the service cannot
  /// depend on the server object: the server holds the handler).
  std::function<HttpServerStats()> server_stats;
};

/// Protocol handler; one instance serves every connection worker at once
/// (Handle is thread-safe — the engine's serving surface is, and the
/// service's own state is a mutex-guarded stats cache).
class BanksService {
 public:
  explicit BanksService(BanksEngine* engine, BanksServiceOptions options = {});

  /// The HttpServer handler: routes one request, writes one response.
  void Handle(const HttpRequest& request, HttpResponseWriter& writer);

  /// Wires up transport counters for GET /stats. Call before the server
  /// starts serving (not synchronized against in-flight Handle calls).
  void set_server_stats(std::function<HttpServerStats()> fn) {
    options_.server_stats = std::move(fn);
  }

  /// The one answer serializer, shared by the streaming path and by the
  /// tests/bench that assert an HTTP stream is byte-identical to
  /// serializing a drained in-process session. Deterministic.
  static std::string AnswerJson(const BanksEngine& engine,
                                const ConnectionTree& tree, size_t rank,
                                bool render);

 private:
  void HandleQuery(const HttpRequest& request, HttpResponseWriter& writer);
  void HandleStats(const HttpRequest& request, HttpResponseWriter& writer);
  void HandleMutate(const HttpRequest& request, HttpResponseWriter& writer);
  void HandleRefreeze(const HttpRequest& request, HttpResponseWriter& writer);
  void HandleSnapshot(const HttpRequest& request, HttpResponseWriter& writer);

  BanksEngine* engine_;
  BanksServiceOptions options_;

  // Last refreeze outcome, replayed under GET /stats.
  mutable util::Mutex refreeze_mu_;
  bool have_last_refreeze_ BANKS_GUARDED_BY(refreeze_mu_) = false;
  RefreezeStats last_refreeze_ BANKS_GUARDED_BY(refreeze_mu_);
};

}  // namespace banks::server::net

#endif  // BANKS_SERVER_NET_BANKS_SERVICE_H_
