#include "server/net/http.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace banks::server::net {

namespace {

std::string Lowered(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string_view Trimmed(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

Status ParseRequestHead(std::string_view head, HttpRequest* out) {
  *out = HttpRequest{};
  size_t line_end = head.find("\r\n");
  std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  size_t sp1 = request_line.find(' ');
  size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos ||
      request_line.find(' ', sp2 + 1) != std::string_view::npos) {
    return Status::InvalidArgument("malformed request line");
  }
  out->method = std::string(request_line.substr(0, sp1));
  out->target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  out->version = std::string(request_line.substr(sp2 + 1));
  if (out->method.empty() || out->target.empty() || out->target[0] != '/') {
    return Status::InvalidArgument("malformed request line");
  }
  if (out->version != "HTTP/1.1" && out->version != "HTTP/1.0") {
    return Status::InvalidArgument("unsupported HTTP version");
  }

  size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    line_end = head.find("\r\n", pos);
    std::string_view line = line_end == std::string_view::npos
                                ? head.substr(pos)
                                : head.substr(pos, line_end - pos);
    pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
    if (line.empty()) continue;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Status::InvalidArgument("malformed header line");
    }
    std::string_view name = line.substr(0, colon);
    if (name != Trimmed(name)) {  // RFC 9112: no whitespace around the name
      return Status::InvalidArgument("malformed header line");
    }
    out->headers.emplace_back(Lowered(name),
                              std::string(Trimmed(line.substr(colon + 1))));
  }

  // Connection persistence: HTTP/1.1 defaults to keep-alive, 1.0 to close.
  out->keep_alive = out->version == "HTTP/1.1";
  if (const std::string* conn = out->FindHeader("connection")) {
    std::string value = Lowered(*conn);
    if (value == "close") out->keep_alive = false;
    if (value == "keep-alive") out->keep_alive = true;
  }
  return Status::OK();
}

ReadResult ReadHttpRequest(const Socket& sock, std::string* carry,
                           HttpRequest* out, const HttpLimits& limits) {
  char buf[8192];

  // Accumulate until the blank line terminating the head.
  size_t head_end;
  while ((head_end = carry->find("\r\n\r\n")) == std::string::npos) {
    if (carry->size() > limits.max_header_bytes) return ReadResult::kTooLarge;
    long n = sock.Recv(buf, sizeof(buf));
    if (n < 0) return ReadResult::kIoError;
    if (n == 0) {
      // Clean close between requests is normal keep-alive termination;
      // mid-head close is a protocol error.
      return carry->empty() ? ReadResult::kClosed : ReadResult::kMalformed;
    }
    carry->append(buf, static_cast<size_t>(n));
  }
  if (head_end > limits.max_header_bytes) return ReadResult::kTooLarge;

  if (!ParseRequestHead(std::string_view(*carry).substr(0, head_end), out)
           .ok()) {
    return ReadResult::kMalformed;
  }
  carry->erase(0, head_end + 4);

  size_t body_len = 0;
  if (const std::string* cl = out->FindHeader("content-length")) {
    char* end = nullptr;
    unsigned long long parsed = std::strtoull(cl->c_str(), &end, 10);
    if (cl->empty() || end == nullptr || *end != '\0') {
      return ReadResult::kMalformed;
    }
    if (parsed > limits.max_body_bytes) return ReadResult::kTooLarge;
    body_len = static_cast<size_t>(parsed);
  } else if (out->FindHeader("transfer-encoding") != nullptr) {
    // Chunked request bodies are not needed by any client of this tier.
    return ReadResult::kMalformed;
  }

  while (carry->size() < body_len) {
    long n = sock.Recv(buf, sizeof(buf));
    if (n <= 0) return n == 0 ? ReadResult::kMalformed : ReadResult::kIoError;
    carry->append(buf, static_cast<size_t>(n));
  }
  out->body = carry->substr(0, body_len);
  carry->erase(0, body_len);
  return ReadResult::kRequest;
}

const char* HttpResponseWriter::ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default:  return "Unknown";
  }
}

namespace {

std::string ResponseHead(int status, std::string_view content_type,
                         bool keep_alive) {
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                     HttpResponseWriter::ReasonPhrase(status) + "\r\n";
  head += "Content-Type: ";
  head += content_type;
  head += "\r\nConnection: ";
  head += keep_alive ? "keep-alive" : "close";
  head += "\r\n";
  return head;
}

}  // namespace

bool HttpResponseWriter::SendFull(int status, std::string_view content_type,
                                  std::string_view body, bool keep_alive) {
  std::string out = ResponseHead(status, content_type, keep_alive);
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  out += body;
  ok_ = ok_ && sock_->SendAll(out);
  return ok_;
}

bool HttpResponseWriter::BeginChunked(int status,
                                      std::string_view content_type,
                                      bool keep_alive) {
  std::string out = ResponseHead(status, content_type, keep_alive);
  out += "Transfer-Encoding: chunked\r\n\r\n";
  ok_ = ok_ && sock_->SendAll(out);
  streaming_ = ok_;
  return ok_;
}

bool HttpResponseWriter::WriteChunk(std::string_view data) {
  if (data.empty()) return ok_;
  char size_line[32];
  std::snprintf(size_line, sizeof(size_line), "%zx\r\n", data.size());
  std::string out = size_line;
  out += data;
  out += "\r\n";
  ok_ = ok_ && sock_->SendAll(out);
  return ok_;
}

bool HttpResponseWriter::EndChunked() {
  ok_ = ok_ && sock_->SendAll("0\r\n\r\n");
  streaming_ = false;
  return ok_;
}

}  // namespace banks::server::net
