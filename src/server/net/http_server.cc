#include "server/net/http_server.h"

#include <utility>

namespace banks::server::net {

HttpServer::HttpServer(HttpServerOptions options, HttpHandler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("server already started");
  }
  auto listener = Socket::Listen(options_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener.value());
  port_ = listener_.LocalPort();
  {
    util::MutexLock lock(&mu_);
    serving_.assign(static_cast<size_t>(options_.num_threads), nullptr);
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(static_cast<size_t>(options_.num_threads));
  for (int i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  return Status::OK();
}

void HttpServer::Stop() {
  if (!started_.load() || stopping_.exchange(true)) {
    if (started_.load()) {
      // A concurrent or earlier Stop() owns the teardown; just wait for it.
      WaitUntilStopped();
    }
    return;
  }
  // Unblock the acceptor, then every worker parked in recv() on a live
  // connection. The workers own their Sockets; we only shutdown().
  listener_.ShutdownBoth();
  {
    util::MutexLock lock(&mu_);
    for (Socket* conn : serving_) {
      if (conn != nullptr) conn->ShutdownBoth();
    }
  }
  queue_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  {
    util::MutexLock lock(&mu_);
    pending_.clear();
    stopped_ = true;
  }
  stopped_cv_.notify_all();
}

void HttpServer::WaitUntilStopped() {
  // Wait loops use the explicit `while (!cond) cv.wait(...)` form — the
  // lambda-predicate overload defeats Clang's thread-safety analysis (see
  // the note atop session_handle.cc).
  util::MutexLock lock(&mu_);
  while (!stopped_) stopped_cv_.wait(lock.native());
}

HttpServerStats HttpServer::stats() const {
  util::MutexLock lock(&stats_mu_);
  return stats_;
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load()) {
    auto conn = listener_.Accept();
    if (!conn.ok()) {
      if (stopping_.load()) return;
      continue;  // transient accept failure (e.g. EMFILE); keep serving
    }
    {
      util::MutexLock lock(&stats_mu_);
      ++stats_.accepted;
    }
    bool enqueued = false;
    {
      util::MutexLock lock(&mu_);
      if (pending_.size() < options_.max_pending_connections) {
        pending_.push_back(std::move(conn.value()));
        enqueued = true;
      }
    }
    if (enqueued) {
      queue_cv_.notify_one();
    } else {
      // Queue overflow: refuse with a minimal 503 before a worker would
      // ever see the connection. (Pool overload is the handler's 429.)
      HttpResponseWriter writer(&conn.value());
      writer.SendFull(503, "application/json",
                      "{\"error\":{\"code\":\"Overloaded\",\"status\":503,"
                      "\"message\":\"connection queue full\"}}\n",
                      /*keep_alive=*/false);
      util::MutexLock lock(&stats_mu_);
      ++stats_.rejected_503;
    }
  }
}

void HttpServer::WorkerLoop(int worker_index) {
  for (;;) {
    Socket conn;
    {
      util::MutexLock lock(&mu_);
      while (!stopping_.load() && pending_.empty()) {
        queue_cv_.wait(lock.native());
      }
      if (stopping_.load()) return;
      conn = std::move(pending_.front());
      pending_.pop_front();
      // Publish before serving so Stop() can shutdown() this connection.
      serving_[static_cast<size_t>(worker_index)] = &conn;
    }
    {
      util::MutexLock lock(&stats_mu_);
      ++stats_.active_connections;
    }
    ServeConnection(conn);
    {
      util::MutexLock lock(&stats_mu_);
      --stats_.active_connections;
    }
    {
      // Clear before `conn` is destroyed; Stop() must never see a dangling
      // pointer. shutdown() racing recv() on a live fd is fine, use-after-
      // close is not.
      util::MutexLock lock(&mu_);
      serving_[static_cast<size_t>(worker_index)] = nullptr;
    }
  }
}

void HttpServer::ServeConnection(const Socket& conn) {
  std::string carry;
  while (!stopping_.load()) {
    HttpRequest request;
    ReadResult read = ReadHttpRequest(conn, &carry, &request, options_.limits);
    HttpResponseWriter writer(&conn);
    switch (read) {
      case ReadResult::kRequest:
        break;
      case ReadResult::kClosed:
      case ReadResult::kIoError:
        return;
      case ReadResult::kMalformed:
        {
          util::MutexLock lock(&stats_mu_);
          ++stats_.parse_errors;
        }
        writer.SendFull(400, "application/json",
                        "{\"error\":{\"code\":\"InvalidArgument\","
                        "\"status\":400,\"message\":\"malformed HTTP "
                        "request\"}}\n",
                        /*keep_alive=*/false);
        return;
      case ReadResult::kTooLarge:
        {
          util::MutexLock lock(&stats_mu_);
          ++stats_.parse_errors;
        }
        writer.SendFull(413, "application/json",
                        "{\"error\":{\"code\":\"InvalidArgument\","
                        "\"status\":413,\"message\":\"request too "
                        "large\"}}\n",
                        /*keep_alive=*/false);
        return;
    }
    {
      util::MutexLock lock(&stats_mu_);
      ++stats_.requests;
    }
    handler_(request, writer);
    // A handler that failed mid-send or left a chunked stream open has
    // desynchronized the connection; drop it rather than reuse.
    if (!writer.ok() || writer.streaming() || !request.keep_alive) return;
  }
}

}  // namespace banks::server::net
