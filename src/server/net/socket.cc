#include "server/net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace banks::server::net {

namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> Socket::Listen(uint16_t port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (::listen(fd, backlog) != 0) return Errno("listen");
  return sock;
}

Result<Socket> Socket::ConnectLoopback(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("connect");
  }
  SetNoDelay(fd);
  return sock;
}

Result<Socket> Socket::Accept() const {
  for (;;) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      SetNoDelay(fd);
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

uint16_t Socket::LocalPort() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

long Socket::Recv(char* buf, size_t len) const {
  if (fd_ < 0) return -1;
  for (;;) {
    long n = ::recv(fd_, buf, len, 0);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    return -1;
  }
}

bool Socket::SendAll(std::string_view data) const {
  if (fd_ < 0) return false;
  size_t sent = 0;
  while (sent < data.size()) {
    long n = ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

void Socket::ShutdownBoth() const {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

}  // namespace banks::server::net
