// Threaded blocking-socket HTTP/1.1 server.
//
// Shape: one acceptor thread pushes accepted connections into a bounded
// queue; a fixed pool of connection workers pops and serves each
// connection's keep-alive request loop through a caller-supplied handler.
// Blocking sockets + fixed threads is a deliberate fit for this tier: a
// /query request parks its worker inside the SessionPool's streaming
// stepper anyway, so an event loop would buy nothing — concurrency is
// bounded by the pool's admission control, not by connection count.
//
// Overload story (two layers):
//   - accept-queue full  -> minimal 503 and close (this file);
//   - SessionPool full   -> 429 with a typed kOverloaded body (the
//     handler's job, see banks_service.cc).
#ifndef BANKS_SERVER_NET_HTTP_SERVER_H_
#define BANKS_SERVER_NET_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "server/net/http.h"
#include "server/net/socket.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace banks::server::net {

struct HttpServerOptions {
  uint16_t port = 0;  // 0 = kernel-assigned; read back via port()
  int num_threads = 4;
  // Accepted-but-unserved connections beyond this are refused with 503.
  size_t max_pending_connections = 64;
  HttpLimits limits;
};

struct HttpServerStats {
  uint64_t accepted = 0;
  uint64_t requests = 0;
  uint64_t rejected_503 = 0;   // accept-queue overflow
  uint64_t parse_errors = 0;   // malformed / oversized requests
  uint64_t active_connections = 0;
};

/// Handler contract: called once per parsed request, possibly from many
/// worker threads at once — it must be thread-safe. It must write exactly
/// one response through the writer (SendFull, or a complete chunked
/// sequence). If it leaves the writer mid-stream or !ok(), the connection
/// is dropped instead of reused.
using HttpHandler = std::function<void(const HttpRequest&, HttpResponseWriter&)>;

class HttpServer {
 public:
  HttpServer(HttpServerOptions options, HttpHandler handler);
  ~HttpServer();  // calls Stop()

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and spawns the acceptor + worker threads.
  Status Start();

  /// Stops accepting, unblocks every parked worker (listener and live
  /// connections are shutdown()), and joins all threads. Idempotent;
  /// callable from any thread except a worker.
  void Stop();

  /// Blocks until Stop() has been called (e.g. by a signal handler).
  void WaitUntilStopped();

  /// The bound port; valid after Start() succeeded.
  uint16_t port() const { return port_; }

  HttpServerStats stats() const;

 private:
  void AcceptLoop();
  void WorkerLoop(int worker_index);
  void ServeConnection(const Socket& conn);

  const HttpServerOptions options_;
  const HttpHandler handler_;

  Socket listener_;
  uint16_t port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  mutable util::Mutex mu_;
  std::condition_variable queue_cv_;     // signalled on push and on stop
  std::condition_variable stopped_cv_;   // signalled once by Stop()
  std::deque<Socket> pending_ BANKS_GUARDED_BY(mu_);
  // Per-worker slot pointing at the connection it is currently serving,
  // so Stop() can shutdown() live sockets and unblock recv() — the fast
  // shutdown path. Workers publish before serving, clear before the
  // Socket is destroyed, both under mu_; shutdown-vs-recv on the same fd
  // is safe concurrently.
  std::vector<Socket*> serving_ BANKS_GUARDED_BY(mu_);
  bool stopped_ BANKS_GUARDED_BY(mu_) = false;

  mutable util::Mutex stats_mu_;
  HttpServerStats stats_ BANKS_GUARDED_BY(stats_mu_);
};

}  // namespace banks::server::net

#endif  // BANKS_SERVER_NET_HTTP_SERVER_H_
