#include "server/session_handle.h"

#include <utility>

namespace banks::server {

// Wait predicates are written as explicit `while (!cond) cv.wait(...)`
// loops rather than the lambda-predicate overload: Clang's thread-safety
// analysis treats a lambda as a separate function holding no locks, so a
// predicate reading the guarded fields could not be verified. The loop
// form keeps every guarded access inside the MutexLock scope — same
// semantics, checkable.

std::optional<ScoredAnswer> SessionHandle::Next() {
  if (task_ == nullptr) return std::nullopt;
  util::MutexLock lock(&task_->mu);
  while (task_->ready.empty() && !task_->finished &&
         !task_->cancel_requested.load(std::memory_order_acquire)) {
    task_->cv.wait(lock.native());
  }
  if (task_->ready.empty()) return std::nullopt;
  ScoredAnswer answer = std::move(task_->ready.front());
  task_->ready.pop_front();
  return answer;
}

std::optional<ScoredAnswer> SessionHandle::TryNext() {
  if (task_ == nullptr) return std::nullopt;
  util::MutexLock lock(&task_->mu);
  if (task_->ready.empty()) return std::nullopt;
  ScoredAnswer answer = std::move(task_->ready.front());
  task_->ready.pop_front();
  return answer;
}

std::vector<ConnectionTree> SessionHandle::NextBatch(size_t k) {
  std::vector<ConnectionTree> page;
  if (task_ == nullptr || k == 0) return page;
  // Take whole publication batches under one lock hold instead of
  // re-locking per answer — the consumer-side half of batched answer
  // publication (workers publish once per slice, see RunSlice).
  util::MutexLock lock(&task_->mu);
  for (;;) {
    while (task_->ready.empty() && !task_->finished &&
           !task_->cancel_requested.load(std::memory_order_acquire)) {
      task_->cv.wait(lock.native());
    }
    while (page.size() < k && !task_->ready.empty()) {
      page.push_back(std::move(task_->ready.front().tree));
      task_->ready.pop_front();
    }
    if (page.size() >= k) return page;
    if (task_->finished ||
        task_->cancel_requested.load(std::memory_order_acquire)) {
      return page;  // buffer drained and no more answers are coming
    }
  }
}

std::vector<ConnectionTree> SessionHandle::Drain() { return NextBatch(SIZE_MAX); }

void SessionHandle::Cancel() {
  if (task_ == nullptr) return;
  // Flag first (workers check it at slice boundaries), then drop what was
  // already buffered and wake any blocked consumer — it will observe the
  // flag through the wait predicate and return empty-handed.
  task_->cancel_requested.store(true, std::memory_order_release);
  util::MutexLock lock(&task_->mu);
  task_->ready.clear();
  task_->cv.notify_all();
}

bool SessionHandle::Done() const {
  if (task_ == nullptr) return true;
  util::MutexLock lock(&task_->mu);
  return task_->ready.empty() &&
         (task_->finished ||
          task_->cancel_requested.load(std::memory_order_acquire));
}

void SessionHandle::Wait() const {
  if (task_ == nullptr) return;
  util::MutexLock lock(&task_->mu);
  while (!task_->finished) task_->cv.wait(lock.native());
}

SearchStats SessionHandle::stats() const {
  if (task_ == nullptr) return SearchStats{};
  util::MutexLock lock(&task_->mu);
  return task_->stats;
}

}  // namespace banks::server
