#include "server/session_handle.h"

#include <utility>

namespace banks::server {

std::optional<ScoredAnswer> SessionHandle::Next() {
  if (task_ == nullptr) return std::nullopt;
  std::unique_lock<std::mutex> lock(task_->mu);
  task_->cv.wait(lock, [&] {
    return !task_->ready.empty() || task_->finished ||
           task_->cancel_requested.load(std::memory_order_acquire);
  });
  if (task_->ready.empty()) return std::nullopt;
  ScoredAnswer answer = std::move(task_->ready.front());
  task_->ready.pop_front();
  return answer;
}

std::optional<ScoredAnswer> SessionHandle::TryNext() {
  if (task_ == nullptr) return std::nullopt;
  std::lock_guard<std::mutex> lock(task_->mu);
  if (task_->ready.empty()) return std::nullopt;
  ScoredAnswer answer = std::move(task_->ready.front());
  task_->ready.pop_front();
  return answer;
}

std::vector<ConnectionTree> SessionHandle::NextBatch(size_t k) {
  std::vector<ConnectionTree> page;
  page.reserve(k);
  while (page.size() < k) {
    auto answer = Next();
    if (!answer.has_value()) break;
    page.push_back(std::move(answer->tree));
  }
  return page;
}

std::vector<ConnectionTree> SessionHandle::Drain() {
  std::vector<ConnectionTree> rest;
  while (auto answer = Next()) rest.push_back(std::move(answer->tree));
  return rest;
}

void SessionHandle::Cancel() {
  if (task_ == nullptr) return;
  // Flag first (workers check it at slice boundaries), then drop what was
  // already buffered and wake any blocked consumer — it will observe the
  // flag through the wait predicate and return empty-handed.
  task_->cancel_requested.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(task_->mu);
  task_->ready.clear();
  task_->cv.notify_all();
}

bool SessionHandle::Done() const {
  if (task_ == nullptr) return true;
  std::lock_guard<std::mutex> lock(task_->mu);
  return task_->ready.empty() &&
         (task_->finished ||
          task_->cancel_requested.load(std::memory_order_acquire));
}

void SessionHandle::Wait() const {
  if (task_ == nullptr) return;
  std::unique_lock<std::mutex> lock(task_->mu);
  task_->cv.wait(lock, [&] { return task_->finished; });
}

SearchStats SessionHandle::stats() const {
  if (task_ == nullptr) return SearchStats{};
  std::lock_guard<std::mutex> lock(task_->mu);
  return task_->stats;
}

}  // namespace banks::server
