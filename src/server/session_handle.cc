#include "server/session_handle.h"

#include <utility>

namespace banks::server {

std::optional<ScoredAnswer> SessionHandle::Next() {
  if (task_ == nullptr) return std::nullopt;
  std::unique_lock<std::mutex> lock(task_->mu);
  task_->cv.wait(lock, [&] {
    return !task_->ready.empty() || task_->finished ||
           task_->cancel_requested.load(std::memory_order_acquire);
  });
  if (task_->ready.empty()) return std::nullopt;
  ScoredAnswer answer = std::move(task_->ready.front());
  task_->ready.pop_front();
  return answer;
}

std::optional<ScoredAnswer> SessionHandle::TryNext() {
  if (task_ == nullptr) return std::nullopt;
  std::lock_guard<std::mutex> lock(task_->mu);
  if (task_->ready.empty()) return std::nullopt;
  ScoredAnswer answer = std::move(task_->ready.front());
  task_->ready.pop_front();
  return answer;
}

std::vector<ConnectionTree> SessionHandle::NextBatch(size_t k) {
  std::vector<ConnectionTree> page;
  if (task_ == nullptr || k == 0) return page;
  // Take whole publication batches under one lock hold instead of
  // re-locking per answer — the consumer-side half of batched answer
  // publication (workers publish once per slice, see RunSlice).
  std::unique_lock<std::mutex> lock(task_->mu);
  for (;;) {
    task_->cv.wait(lock, [&] {
      return !task_->ready.empty() || task_->finished ||
             task_->cancel_requested.load(std::memory_order_acquire);
    });
    while (page.size() < k && !task_->ready.empty()) {
      page.push_back(std::move(task_->ready.front().tree));
      task_->ready.pop_front();
    }
    if (page.size() >= k) return page;
    if (task_->finished ||
        task_->cancel_requested.load(std::memory_order_acquire)) {
      return page;  // buffer drained and no more answers are coming
    }
  }
}

std::vector<ConnectionTree> SessionHandle::Drain() { return NextBatch(SIZE_MAX); }

void SessionHandle::Cancel() {
  if (task_ == nullptr) return;
  // Flag first (workers check it at slice boundaries), then drop what was
  // already buffered and wake any blocked consumer — it will observe the
  // flag through the wait predicate and return empty-handed.
  task_->cancel_requested.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(task_->mu);
  task_->ready.clear();
  task_->cv.notify_all();
}

bool SessionHandle::Done() const {
  if (task_ == nullptr) return true;
  std::lock_guard<std::mutex> lock(task_->mu);
  return task_->ready.empty() &&
         (task_->finished ||
          task_->cancel_requested.load(std::memory_order_acquire));
}

void SessionHandle::Wait() const {
  if (task_ == nullptr) return;
  std::unique_lock<std::mutex> lock(task_->mu);
  task_->cv.wait(lock, [&] { return task_->finished; });
}

SearchStats SessionHandle::stats() const {
  if (task_ == nullptr) return SearchStats{};
  std::lock_guard<std::mutex> lock(task_->mu);
  return task_->stats;
}

}  // namespace banks::server
