#include "server/session_pool.h"

#include <algorithm>
#include <utility>

#include "core/banks.h"
#include "server/query_cache.h"

namespace banks::server {

namespace {

PoolOptions Normalize(PoolOptions options) {
  if (options.num_workers == 0) {
    options.num_workers = std::max(1u, std::thread::hardware_concurrency());
  }
  options.step_quantum = std::max<size_t>(1, options.step_quantum);
  options.initial_quantum = std::max<size_t>(
      1, std::min(options.initial_quantum, options.step_quantum));
  options.quantum_growth = std::max<size_t>(1, options.quantum_growth);
  options.max_active = std::max<size_t>(1, options.max_active);
  return options;
}

}  // namespace

SessionPool::SessionPool(const BanksEngine& engine, PoolOptions options)
    : engine_(&engine),
      options_(Normalize(options)),
      sched_(options_.num_workers),
      worker_counters_(options_.num_workers) {
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

SessionPool::~SessionPool() { Shutdown(); }

Result<SessionHandle> SessionPool::Submit(const QueryRequest& request) {
  // Keyword resolution runs on the submitting thread (a pure read of the
  // engine's immutable indexes), so workers only ever pump steppers.
  auto session = engine_->OpenSession(request);
  if (!session.ok()) return session.status();
  return Submit(std::move(session).value());
}

Result<SessionHandle> SessionPool::Submit(QuerySession session) {
  auto task = std::make_shared<ServerTask>();
  task->deadline = session.budget().deadline;
  task->parsed = session.parsed();
  task->dropped_terms = session.dropped_terms();
  task->session = std::move(session);
  task->quantum = options_.initial_quantum;

  {
    util::MutexLock lock(&mu_);
    if (stopping_) {
      ++counters_.rejected;
      return Status::FailedPrecondition("session pool is shut down");
    }
    task->seq = next_seq_++;
    if (active_ < options_.max_active) {
      ++active_;
      ++counters_.submitted;
      sched_.PushBalanced(task);  // cannot fail: sched stops under mu_ too
      work_cv_.notify_one();
    } else if (waiting_.size() < options_.max_waiting) {
      ++counters_.submitted;
      waiting_.push_back(task);
    } else {
      ++counters_.rejected;
      return Status::Overloaded(
          "session pool overloaded: admission queue full (" +
          std::to_string(options_.max_active) + " active + " +
          std::to_string(options_.max_waiting) + " waiting)");
    }
  }
  return SessionHandle(std::move(task));
}

void SessionPool::AdmitLocked() {
  if (stopping_) return;  // Shutdown owns the waiting queue now
  while (active_ < options_.max_active && !waiting_.empty()) {
    std::shared_ptr<ServerTask> task = std::move(waiting_.front());
    waiting_.pop_front();
    ++active_;
    sched_.PushBalanced(task);
    work_cv_.notify_one();
  }
}

void SessionPool::WakeOneIfSleeping() {
  if (sleepers_.load() == 0) return;  // seq_cst: pairs with total_load push
  // Tap the mutex so a worker between its predicate check and its block
  // cannot miss the notify (it either sees the new load or is fully
  // waiting by the time we notify).
  { util::MutexLock lock(&mu_); }
  work_cv_.notify_one();
}

void SessionPool::WorkerLoop(size_t me) {
  WorkerCounters& wc = worker_counters_[me];
  for (;;) {
    std::shared_ptr<ServerTask> task = sched_.PopLocal(me);
    bool stolen = false;
    if (task == nullptr) {
      task = sched_.Steal(me);
      stolen = task != nullptr;
    }
    if (task == nullptr) {
      // Explicit wait loop (not the lambda-predicate overload) so the
      // thread-safety analysis sees the guarded `stopping_` read under
      // mu_; see the note atop session_handle.cc.
      util::MutexLock lock(&mu_);
      sleepers_.fetch_add(1);  // seq_cst: see WakeOneIfSleeping
      while (!stopping_ && sched_.total_load() == 0) {
        work_cv_.wait(lock.native());
      }
      sleepers_.fetch_sub(1);
      if (stopping_) return;
      continue;
    }

    wc.slices.fetch_add(1, std::memory_order_relaxed);
    (stolen ? wc.steals : wc.local_pops)
        .fetch_add(1, std::memory_order_relaxed);
    wc.quantum_steps.fetch_add(task->quantum, std::memory_order_relaxed);

    SliceResult result = RunSlice(*task);
    if (result.answers_published > 0) {
      wc.publishes.fetch_add(1, std::memory_order_relaxed);
      wc.answers_published.fetch_add(result.answers_published,
                                     std::memory_order_relaxed);
    }

    if (!result.finished) {
      // Requeue on our own shard: the session stays affine to this worker
      // until a peer steals it. A failed push means Shutdown drained the
      // scheduler under us — the task is ours to retire as cancelled.
      if (sched_.Push(me, task)) {
        if (sched_.load(me) > 1) WakeOneIfSleeping();  // stealable backlog
        continue;
      }
      result.finished = true;
      result.cancelled = true;
    }
    RetireTask(task, result);
  }
}

void SessionPool::RetireTask(const std::shared_ptr<ServerTask>& task,
                             const SliceResult& result) {
  {
    // Counters first, then the task-visible finished flag — so once a
    // handle's Wait() returns, stats() already reflects this session.
    util::MutexLock lock(&mu_);
    --active_;
    ++counters_.completed;
    if (result.cancelled) ++counters_.cancelled;
    if (result.deadline_truncated) ++counters_.deadline_truncated;
    AdmitLocked();
  }
  FinishTask(*task, result.cancelled);
}

SessionPool::SliceResult SessionPool::RunSlice(ServerTask& task) {
  SliceResult result;
  if (task.cancel_requested.load(std::memory_order_acquire)) {
    task.session.Cancel();  // confined teardown; WorkerLoop retires us
    result.finished = true;
    result.cancelled = true;
    return result;
  }

  // One core-side call pumps the whole quantum and buffers every answer
  // the slice produces (see QuerySession::PumpMany) — the publication
  // below is the slice's only handle-lock crossing.
  std::vector<ScoredAnswer> produced;
  const size_t steps_before = task.steps;
  PumpOutcome outcome = task.session.PumpMany(task.quantum, &produced);
  task.steps = task.session.pump_steps();
  const bool exhausted = outcome == PumpOutcome::kExhausted;
  if (!exhausted && task.steps <= steps_before) {
    // Zero-progress yield: a follower parked on an in-flight identical
    // run does no stepper work, so charge the granted quantum anyway —
    // otherwise the least-attained-service tiebreak keeps scheduling the
    // parked session ahead of the leader it is waiting on.
    task.steps = steps_before + task.quantum;
  }
  task.quantum =
      std::min(options_.step_quantum, task.quantum * options_.quantum_growth);
  if (exhausted &&
      task.session.stats().truncation == Truncation::kDeadline) {
    result.deadline_truncated = true;
  }

  {
    util::MutexLock lock(&task.mu);
    // A cancel may have landed mid-slice; honour it rather than publish.
    if (task.cancel_requested.load(std::memory_order_acquire)) {
      produced.clear();
    } else {
      result.answers_published = produced.size();
      for (auto& a : produced) task.ready.push_back(std::move(a));
    }
    task.stats = task.session.stats();
    if (!task.ready.empty()) task.cv.notify_all();
  }
  // The finished flag is set by WorkerLoop (via FinishTask) after the
  // pool counters are final, so Wait()+stats() never race.
  result.finished = exhausted;
  return result;
}

void SessionPool::FinishTask(ServerTask& task, bool cancelled) {
  util::MutexLock lock(&task.mu);
  task.stats = task.session.stats();
  task.finished = true;
  task.cancelled = cancelled;
  task.cv.notify_all();
}

void SessionPool::Shutdown() {
  util::MutexLock shutdown_lock(&shutdown_mu_);
  std::vector<std::shared_ptr<ServerTask>> orphans;
  {
    util::MutexLock lock(&mu_);
    stopping_ = true;
    // Stop the scheduler first (under mu_, so no Submit can interleave),
    // then drain it: a worker mid-slice either requeued before the drain
    // (its task is in `orphans`) or its requeue fails and it retires the
    // task itself. active_ stays consistent either way.
    sched_.RequestStop();
    orphans = sched_.DrainAll();
    active_ -= orphans.size();
    for (auto& task : waiting_) orphans.push_back(std::move(task));
    waiting_.clear();
    counters_.cancelled += orphans.size();
    counters_.completed += orphans.size();
    work_cv_.notify_all();
  }
  // No worker owns these tasks any more (they were still queued), so the
  // sessions are safe to retire from here.
  for (auto& task : orphans) FinishTask(*task, /*cancelled=*/true);
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

PoolStats SessionPool::stats() const {
  PoolStats snapshot;
  {
    util::MutexLock lock(&mu_);
    snapshot = counters_;
    snapshot.active = active_;
    snapshot.waiting = waiting_.size();
  }
  for (const WorkerCounters& wc : worker_counters_) {
    snapshot.slices += wc.slices.load(std::memory_order_relaxed);
    snapshot.local_pops += wc.local_pops.load(std::memory_order_relaxed);
    snapshot.steals += wc.steals.load(std::memory_order_relaxed);
    snapshot.publishes += wc.publishes.load(std::memory_order_relaxed);
    snapshot.answers_published +=
        wc.answers_published.load(std::memory_order_relaxed);
    snapshot.quantum_steps +=
        wc.quantum_steps.load(std::memory_order_relaxed);
  }
  // Engine state is sampled outside mu_ (it takes the engine's state
  // lock; never nest the two).
  snapshot.engine_epoch = engine_->epoch();
  snapshot.pending_mutations = engine_->pending_mutations();
  const QueryCacheStats cache = engine_->query_cache_stats();
  snapshot.cache_hits = cache.hits;
  snapshot.cache_misses = cache.misses;
  snapshot.cache_invalidations = cache.invalidations;
  snapshot.cache_resolution_hits = cache.resolution_hits;
  snapshot.cache_coalesced = cache.coalesced;
  snapshot.snapshot_epoch = engine_->snapshot_epoch();
  snapshot.snapshot_bytes = engine_->snapshot_bytes();
  return snapshot;
}

}  // namespace banks::server
