#include "server/session_pool.h"

#include <algorithm>
#include <utility>

#include "core/banks.h"

namespace banks::server {

namespace {

PoolOptions Normalize(PoolOptions options) {
  if (options.num_workers == 0) {
    options.num_workers = std::max(1u, std::thread::hardware_concurrency());
  }
  options.step_quantum = std::max<size_t>(1, options.step_quantum);
  options.max_active = std::max<size_t>(1, options.max_active);
  return options;
}

}  // namespace

SessionPool::SessionPool(const BanksEngine& engine, PoolOptions options)
    : engine_(&engine), options_(Normalize(options)) {
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

SessionPool::~SessionPool() { Shutdown(); }

Result<SessionHandle> SessionPool::Submit(const std::string& query_text) {
  return Submit(query_text, engine_->options().search, Budget{});
}

Result<SessionHandle> SessionPool::Submit(const std::string& query_text,
                                          SearchOptions search,
                                          Budget budget) {
  // Keyword resolution runs on the submitting thread (a pure read of the
  // engine's immutable indexes), so workers only ever pump steppers.
  auto session = engine_->OpenSession(query_text, std::move(search), budget);
  if (!session.ok()) return session.status();
  return Submit(std::move(session).value());
}

Result<SessionHandle> SessionPool::Submit(QuerySession session) {
  auto task = std::make_shared<ServerTask>();
  task->deadline = session.budget().deadline;
  task->parsed = session.parsed();
  task->dropped_terms = session.dropped_terms();
  task->session = std::move(session);

  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) {
    ++counters_.rejected;
    return Status::FailedPrecondition("session pool is shut down");
  }
  task->seq = next_seq_++;
  if (active_ < options_.max_active) {
    ++active_;
    ++counters_.submitted;
    ready_.Push(task);
    work_cv_.notify_one();
  } else if (waiting_.size() < options_.max_waiting) {
    ++counters_.submitted;
    waiting_.push_back(task);
  } else {
    ++counters_.rejected;
    return Status::FailedPrecondition(
        "session pool overloaded: admission queue full (" +
        std::to_string(options_.max_active) + " active + " +
        std::to_string(options_.max_waiting) + " waiting)");
  }
  return SessionHandle(std::move(task));
}

void SessionPool::AdmitLocked() {
  while (active_ < options_.max_active && !waiting_.empty()) {
    std::shared_ptr<ServerTask> task = std::move(waiting_.front());
    waiting_.pop_front();
    ++active_;
    ready_.Push(std::move(task));
    work_cv_.notify_one();
  }
}

void SessionPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stopping_ || !ready_.empty(); });
    if (stopping_) return;
    std::shared_ptr<ServerTask> task = ready_.Pop();
    ++counters_.slices;
    lock.unlock();

    SliceResult result = RunSlice(*task);

    lock.lock();
    if (stopping_ && !result.finished) {
      // Shutdown raced this slice: the task must not be requeued (the run
      // queue is being drained), so retire it as cancelled.
      result.finished = true;
      result.cancelled = true;
    }
    if (result.finished) {
      // Counters first, then the task-visible finished flag — so once a
      // handle's Wait() returns, stats() already reflects this session.
      --active_;
      ++counters_.completed;
      if (result.cancelled) ++counters_.cancelled;
      if (result.deadline_truncated) ++counters_.deadline_truncated;
      AdmitLocked();
      lock.unlock();
      FinishTask(*task, result.cancelled);
      lock.lock();
    } else {
      ready_.Push(std::move(task));
      work_cv_.notify_one();
    }
  }
}

SessionPool::SliceResult SessionPool::RunSlice(ServerTask& task) {
  SliceResult result;
  if (task.cancel_requested.load(std::memory_order_acquire)) {
    task.session.Cancel();  // confined teardown; WorkerLoop retires us
    result.finished = true;
    result.cancelled = true;
    return result;
  }

  const size_t quantum = options_.step_quantum;
  size_t used = 0;
  std::vector<ScoredAnswer> produced;
  bool exhausted = false;
  while (used < quantum) {
    const size_t before = task.session.pump_steps();
    std::optional<ScoredAnswer> answer;
    PumpOutcome outcome = task.session.PumpSlice(quantum - used, &answer);
    const size_t after = task.session.pump_steps();
    // Buffered answers cost no stepper work; still count one unit so a
    // slice always terminates.
    used += std::max<size_t>(1, after - before);
    if (answer.has_value()) produced.push_back(std::move(*answer));
    if (outcome == PumpOutcome::kExhausted) {
      exhausted = true;
      break;
    }
  }
  task.steps = task.session.pump_steps();
  if (exhausted &&
      task.session.stats().truncation == Truncation::kDeadline) {
    result.deadline_truncated = true;
  }

  {
    std::lock_guard<std::mutex> lock(task.mu);
    // A cancel may have landed mid-slice; honour it rather than publish.
    if (task.cancel_requested.load(std::memory_order_acquire)) {
      produced.clear();
    } else {
      for (auto& a : produced) task.ready.push_back(std::move(a));
    }
    task.stats = task.session.stats();
    if (!task.ready.empty()) task.cv.notify_all();
  }
  // The finished flag is set by WorkerLoop (via FinishTask) after the
  // pool counters are final, so Wait()+stats() never race.
  result.finished = exhausted;
  return result;
}

void SessionPool::FinishTask(ServerTask& task, bool cancelled) {
  std::lock_guard<std::mutex> lock(task.mu);
  task.stats = task.session.stats();
  task.finished = true;
  task.cancelled = cancelled;
  task.cv.notify_all();
}

void SessionPool::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  std::vector<std::shared_ptr<ServerTask>> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    // Tasks still owned by a worker mid-slice are retired by that worker
    // (it observes stopping_ when its slice ends) — only queued ones are
    // drained here. active_ stays consistent: queued tasks give theirs
    // back now, running ones when their worker retires them.
    while (!ready_.empty()) {
      orphans.push_back(ready_.Pop());
      --active_;
    }
    for (auto& task : waiting_) orphans.push_back(std::move(task));
    waiting_.clear();
    counters_.cancelled += orphans.size();
    counters_.completed += orphans.size();
    work_cv_.notify_all();
  }
  // No worker owns these tasks any more (they were still queued), so the
  // sessions are safe to retire from here.
  for (auto& task : orphans) FinishTask(*task, /*cancelled=*/true);
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

PoolStats SessionPool::stats() const {
  PoolStats snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = counters_;
    snapshot.active = active_;
    snapshot.waiting = waiting_.size();
  }
  // Engine state is sampled outside mu_ (it takes the engine's state
  // lock; never nest the two).
  snapshot.engine_epoch = engine_->epoch();
  snapshot.pending_mutations = engine_->pending_mutations();
  return snapshot;
}

}  // namespace banks::server
