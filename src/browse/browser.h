// The browsing facade (§4): hyperlinked navigation over a database.
//
// A Browser resolves "banks:" URIs to rendered pages: a tuple page shows
// the tuple with FK hyperlinks and backward-browse links; a refs page lists
// the referencing tuples through one FK; a table page shows a paginated
// TableView with hyperlinks in FK cells. "No content programming or user
// intervention is required" — everything derives from catalog metadata.
#ifndef BANKS_BROWSE_BROWSER_H_
#define BANKS_BROWSE_BROWSER_H_

#include <string>
#include <unordered_set>

#include "browse/hyperlink.h"
#include "browse/table_view.h"
#include "storage/database.h"
#include "util/status.h"

namespace banks {

class Browser {
 public:
  explicit Browser(const Database& db) : db_(&db) {}

  /// Browser with table-level visibility restrictions (§7 authorization):
  /// hidden tables 404 (as NotFound, indistinguishable from non-existent)
  /// and never appear in backward links or schema pages.
  Browser(const Database& db, std::unordered_set<std::string> hidden_tables)
      : db_(&db), hidden_(std::move(hidden_tables)) {}

  /// HTML page for one table (paginated; `page` is 0-based).
  Result<std::string> TablePage(const std::string& table, size_t page = 0,
                                size_t page_size = 25) const;

  /// HTML page for one tuple: every column, FK values hyperlinked, plus
  /// backward-browse links grouped by referencing relation.
  Result<std::string> TuplePage(const std::string& table, uint32_t row) const;

  /// HTML page listing tuples that reference (table,row) through `fk`.
  Result<std::string> RefsPage(const std::string& table, uint32_t row,
                               const std::string& fk_name) const;

  /// Resolves any "banks:" URI to its page (dispatcher over the above).
  Result<std::string> Navigate(const std::string& uri) const;

  /// Renders an arbitrary TableView as HTML (used by examples to show the
  /// results of project/select/join pipelines). FK cells of base tables
  /// become hyperlinks.
  std::string RenderView(const TableView& view, const std::string& title) const;

  /// Schema browsing (§4 "schema browsing is supported"): one page listing
  /// every table, its columns/PK, and its FKs as hyperlink text.
  std::string SchemaPage() const;

 private:
  bool Hidden(const std::string& table) const {
    return hidden_.count(table) > 0;
  }

  const Database* db_;
  std::unordered_set<std::string> hidden_;
};

}  // namespace banks

#endif  // BANKS_BROWSE_BROWSER_H_
