// Stored template instances (§4).
//
// "Template instances are customized, stored in the database, and given a
// hyperlink name, which is used to access the template. ... they can be
// composed together in a hyperlinked, visual manner. The action associated
// with a hyperlink may be scripted to take the user to another template."
//
// Instances live in a `_banks_templates` relation inside the database
// itself, so they survive CSV round-trips like any other data. A template
// is addressed as "banks:template/<name>" and rendered on demand.
#ifndef BANKS_BROWSE_TEMPLATE_REGISTRY_H_
#define BANKS_BROWSE_TEMPLATE_REGISTRY_H_

#include <string>
#include <vector>

#include "storage/database.h"
#include "util/status.h"

namespace banks {

inline constexpr const char* kTemplateTable = "_banks_templates";

/// One customised template instance.
struct TemplateInstance {
  std::string name;   ///< unique hyperlink name
  /// "crosstab" | "groupby" | "folder" | "barchart" | "piechart".
  std::string kind;
  std::string base_table;
  /// Column parameters: crosstab = {row, col}; groupby/folder = grouping
  /// levels; charts = {label} (count series).
  std::vector<std::string> params;
  /// Optional §4 composition: the rendered page links here instead of (in
  /// addition to) showing detail tuples.
  std::string next_template;
};

/// CRUD over the stored instances.
class TemplateRegistry {
 public:
  /// Creates the `_banks_templates` relation if missing.
  static Status EnsureTable(Database* db);

  /// Stores an instance (EnsureTable is called implicitly). Fails on
  /// duplicate names or unknown kinds.
  static Status Register(Database* db, const TemplateInstance& instance);

  /// Fetches one instance by hyperlink name.
  static Result<TemplateInstance> Lookup(const Database& db,
                                         const std::string& name);

  /// Every stored instance.
  static std::vector<TemplateInstance> All(const Database& db);

  /// Instantiates and renders a stored template as HTML. The page carries
  /// a "continue to" link when `next_template` is set.
  static Result<std::string> RenderByName(const Database& db,
                                          const std::string& name);

  static bool IsValidKind(const std::string& kind);
};

}  // namespace banks

#endif  // BANKS_BROWSE_TEMPLATE_REGISTRY_H_
