// HTML rendering of one page of search answers (§4 meets streaming).
//
// The browse layer publishes query results the same zero-effort way it
// publishes tables: every answer's information node links into the
// "banks:" tuple pages. Pages are designed around the streaming API — the
// caller passes exactly the answers of one QuerySession::NextBatch() call
// plus whether more are available, so the first page renders after the
// first k answers are generated, not after the whole search drains.
#ifndef BANKS_BROWSE_ANSWERS_PAGE_H_
#define BANKS_BROWSE_ANSWERS_PAGE_H_

#include <string>
#include <vector>

#include "core/answer.h"
#include "graph/graph_builder.h"
#include "storage/database.h"

namespace banks {

/// One page of streamed answers.
struct AnswersPage {
  std::string query_text;               ///< the user's keyword query
  std::vector<ConnectionTree> answers;  ///< one NextBatch() worth
  size_t page_index = 0;                ///< 0-based page number
  size_t page_size = 10;                ///< answers per page (for numbering)
  bool has_more = false;                ///< session.HasNext() after the batch
};

/// Renders the page as a self-contained HTML fragment: rank + relevance +
/// root label (hyperlinked to its "banks:" tuple page) + the Figure-2 tree
/// rendering, with a next-page hint when the stream has more answers.
std::string RenderAnswersPage(const AnswersPage& page, const DataGraph& dg,
                              const Database& db);

}  // namespace banks

#endif  // BANKS_BROWSE_ANSWERS_PAGE_H_
