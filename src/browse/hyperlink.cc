#include "browse/hyperlink.h"

#include <cstdlib>

#include "util/string_util.h"

namespace banks {

std::string TupleUri(const std::string& table, uint32_t row) {
  return "banks:tuple/" + table + "/" + std::to_string(row);
}

std::string RefsUri(const std::string& table, uint32_t row,
                    const std::string& fk_name) {
  return "banks:refs/" + table + "/" + std::to_string(row) + "/" + fk_name;
}

std::string TemplateUri(const std::string& template_name) {
  return "banks:template/" + template_name;
}

std::optional<ParsedUri> ParseUri(const std::string& uri) {
  if (!StartsWith(uri, "banks:")) return std::nullopt;
  auto parts = Split(uri.substr(6), '/');
  ParsedUri out;
  if (parts.size() == 3 && parts[0] == "tuple") {
    out.kind = ParsedUri::kTuple;
  } else if (parts.size() == 4 && parts[0] == "refs") {
    out.kind = ParsedUri::kRefs;
    out.fk_name = parts[3];
  } else if (parts.size() == 2 && parts[0] == "template" &&
             !parts[1].empty()) {
    out.kind = ParsedUri::kTemplate;
    out.template_name = parts[1];
    return out;
  } else {
    return std::nullopt;
  }
  out.table = parts[1];
  out.row = static_cast<uint32_t>(std::strtoul(parts[2].c_str(), nullptr, 10));
  return out;
}

std::optional<Hyperlink> FkHyperlink(const Database& db, Rid rid,
                                     size_t column) {
  const Table* t = db.table(rid.table_id);
  const Tuple* tuple = db.Get(rid);
  if (t == nullptr || tuple == nullptr) return std::nullopt;
  if (column >= t->schema().num_columns()) return std::nullopt;
  const std::string& col_name = t->schema().columns()[column].name;

  for (const ForeignKey* fk : db.OutgoingFks(t->name())) {
    // A multi-column FK is linked from its first column (one link per
    // reference, not per column).
    if (fk->columns.front() != col_name) continue;
    auto to = db.ResolveFk(*fk, rid);
    if (!to.has_value()) return std::nullopt;  // NULL or dangling
    const Table* ref = db.table(to->table_id);
    return Hyperlink{tuple->at(column).ToText(),
                     TupleUri(ref->name(), to->row)};
  }
  return std::nullopt;
}

std::vector<Hyperlink> BackwardHyperlinks(const Database& db, Rid rid) {
  std::vector<Hyperlink> links;
  const Table* t = db.table(rid.table_id);
  if (t == nullptr) return links;
  for (const ForeignKey* fk : db.IncomingFks(t->name())) {
    links.push_back(Hyperlink{fk->table + " via " + fk->name,
                              RefsUri(t->name(), rid.row, fk->name)});
  }
  return links;
}

}  // namespace banks
