// Display templates (§4).
//
// "BANKS templates provide several predefined ways of displaying any data
// ... The BANKS system currently provides four types of templates":
// cross-tabs, hierarchical group-by, folder views, and graphical (chart)
// views with hyperlinks on the data. Each template consumes a TableView
// and produces a structured result plus an HTML rendering.
#ifndef BANKS_BROWSE_TEMPLATES_H_
#define BANKS_BROWSE_TEMPLATES_H_

#include <memory>
#include <string>
#include <vector>

#include "browse/table_view.h"
#include "util/status.h"

namespace banks {

/// OLAP-style cross tabulation: counts of rows per (row-attr, col-attr).
struct CrossTab {
  std::vector<Value> row_values;             ///< distinct, sorted
  std::vector<Value> col_values;             ///< distinct, sorted
  std::vector<std::vector<size_t>> counts;   ///< [row][col]
};
Result<CrossTab> BuildCrossTab(const TableView& view,
                               const std::string& row_column,
                               const std::string& col_column);
std::string RenderCrossTabHtml(const CrossTab& ct, const std::string& title);

/// Hierarchical group-by: nesting by a sequence of attributes. "grouping a
/// student relation by department and program attributes initially displays
/// all departments; clicking on a department shows all programs..."
struct GroupNode {
  Value value;                               ///< group value at this level
  size_t count = 0;                          ///< rows beneath
  std::vector<std::unique_ptr<GroupNode>> children;
  std::vector<size_t> row_indexes;           ///< leaf level: view rows
};
struct GroupTree {
  std::vector<std::unique_ptr<GroupNode>> roots;
};
Result<GroupTree> BuildGroupTree(const TableView& view,
                                 const std::vector<std::string>& levels);
/// Folder-style rendering ("modeled after the folder view of files and
/// directories") — nested lists, one folder per group value.
std::string RenderGroupTreeHtml(const GroupTree& tree,
                                const std::string& title, bool folder_style);

/// Graphical template data: (label, value) pairs for bar/line/pie charts,
/// each with a drill-down link ("clicking on a bar of a bar chart ... shows
/// tuples with the associated value").
struct ChartSeries {
  struct Point {
    std::string label;
    double value = 0;
    std::string drill_link;  ///< banks: URI or empty
  };
  std::vector<Point> points;
};
enum class ChartKind { kBar, kLine, kPie };
Result<ChartSeries> BuildChartSeries(const TableView& view,
                                     const std::string& label_column,
                                     const std::string& value_column);
/// Counts per distinct label (value_column empty = COUNT(*)).
Result<ChartSeries> BuildCountSeries(const TableView& view,
                                     const std::string& label_column);
/// Renders the chart as inline SVG with per-datum hyperlink anchors (the
/// HTML-image-map equivalent).
std::string RenderChartHtml(const ChartSeries& series, ChartKind kind,
                            const std::string& title);

}  // namespace banks

#endif  // BANKS_BROWSE_TEMPLATES_H_
