// Minimal HTML generation for the browsing subsystem.
//
// The original BANKS served its UI through Java servlets; here the browsing
// layer renders self-contained HTML strings (pages, tables, nested lists)
// that examples write to files. Only the transport differs — the view
// structure (hyperlinks, controls, pagination) follows §4.
#ifndef BANKS_BROWSE_HTML_H_
#define BANKS_BROWSE_HTML_H_

#include <string>
#include <string_view>
#include <vector>

namespace banks {

/// Escapes &, <, >, " for safe embedding in HTML.
std::string HtmlEscape(std::string_view text);

/// <a href="href">text</a> with both parts escaped.
std::string HtmlLink(std::string_view href, std::string_view text);

/// Builder for simple well-formed pages.
class HtmlWriter {
 public:
  void Heading(int level, std::string_view text);
  void Paragraph(std::string_view text);
  /// Raw, pre-escaped markup.
  void Raw(std::string_view markup);

  /// Table with header row and body rows of pre-escaped cell markup.
  void Table(const std::vector<std::string>& header,
             const std::vector<std::vector<std::string>>& rows);

  void OpenList();
  void ListItem(std::string_view markup);  // pre-escaped
  void CloseList();

  /// Wraps everything written so far in a complete document.
  std::string Page(std::string_view title) const;

  const std::string& body() const { return body_; }

 private:
  std::string body_;
};

}  // namespace banks

#endif  // BANKS_BROWSE_HTML_H_
