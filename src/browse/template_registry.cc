#include "browse/template_registry.h"

#include "browse/html.h"
#include "browse/table_view.h"
#include "browse/templates.h"
#include "util/string_util.h"

namespace banks {

bool TemplateRegistry::IsValidKind(const std::string& kind) {
  return kind == "crosstab" || kind == "groupby" || kind == "folder" ||
         kind == "barchart" || kind == "piechart";
}

Status TemplateRegistry::EnsureTable(Database* db) {
  if (db->table(kTemplateTable) != nullptr) return Status::OK();
  return db->CreateTable(TableSchema(kTemplateTable,
                                     {{"Name", ValueType::kString},
                                      {"Kind", ValueType::kString},
                                      {"BaseTable", ValueType::kString},
                                      {"Params", ValueType::kString},
                                      {"NextTemplate", ValueType::kString}},
                                     {"Name"}));
}

Status TemplateRegistry::Register(Database* db,
                                  const TemplateInstance& instance) {
  if (instance.name.empty()) {
    return Status::InvalidArgument("template needs a hyperlink name");
  }
  if (!IsValidKind(instance.kind)) {
    return Status::InvalidArgument("unknown template kind '" +
                                   instance.kind + "'");
  }
  if (db->table(instance.base_table) == nullptr) {
    return Status::NotFound("template base table '" + instance.base_table +
                            "' does not exist");
  }
  Status s = EnsureTable(db);
  if (!s.ok()) return s;
  auto r = db->Insert(
      kTemplateTable,
      Tuple({Value(instance.name), Value(instance.kind),
             Value(instance.base_table), Value(Join(instance.params, ",")),
             instance.next_template.empty() ? Value::Null()
                                            : Value(instance.next_template)}));
  return r.ok() ? Status::OK() : r.status();
}

Result<TemplateInstance> TemplateRegistry::Lookup(const Database& db,
                                                  const std::string& name) {
  const Table* t = db.table(kTemplateTable);
  if (t == nullptr) return Status::NotFound("no templates registered");
  auto row = t->LookupPk({Value(name)});
  if (!row.has_value()) {
    return Status::NotFound("no template named '" + name + "'");
  }
  const Tuple& tuple = t->row(*row);
  TemplateInstance instance;
  instance.name = tuple.at(0).AsString();
  instance.kind = tuple.at(1).AsString();
  instance.base_table = tuple.at(2).AsString();
  for (const auto& p : Split(tuple.at(3).AsString(), ',')) {
    if (!p.empty()) instance.params.push_back(p);
  }
  if (!tuple.at(4).is_null()) instance.next_template = tuple.at(4).AsString();
  return instance;
}

std::vector<TemplateInstance> TemplateRegistry::All(const Database& db) {
  std::vector<TemplateInstance> out;
  const Table* t = db.table(kTemplateTable);
  if (t == nullptr) return out;
  for (uint32_t r = 0; r < t->num_rows(); ++r) {
    auto instance = Lookup(db, t->row(r).at(0).AsString());
    if (instance.ok()) out.push_back(std::move(instance).value());
  }
  return out;
}

Result<std::string> TemplateRegistry::RenderByName(const Database& db,
                                                   const std::string& name) {
  auto lookup = Lookup(db, name);
  if (!lookup.ok()) return lookup.status();
  const TemplateInstance& inst = lookup.value();

  auto view = TableView::FromTable(db, inst.base_table);
  if (!view.ok()) return view.status();

  std::string body;
  if (inst.kind == "crosstab") {
    if (inst.params.size() != 2) {
      return Status::InvalidArgument("crosstab needs {row, col} params");
    }
    auto ct = BuildCrossTab(view.value(), inst.params[0], inst.params[1]);
    if (!ct.ok()) return ct.status();
    body = RenderCrossTabHtml(ct.value(), inst.name);
  } else if (inst.kind == "groupby" || inst.kind == "folder") {
    if (inst.params.empty()) {
      return Status::InvalidArgument("group-by needs level params");
    }
    auto tree = BuildGroupTree(view.value(), inst.params);
    if (!tree.ok()) return tree.status();
    body = RenderGroupTreeHtml(tree.value(), inst.name,
                               inst.kind == "folder");
  } else if (inst.kind == "barchart" || inst.kind == "piechart") {
    if (inst.params.size() != 1) {
      return Status::InvalidArgument("chart needs {label} param");
    }
    auto series = BuildCountSeries(view.value(), inst.params[0]);
    if (!series.ok()) return series.status();
    body = RenderChartHtml(series.value(),
                           inst.kind == "barchart" ? ChartKind::kBar
                                                   : ChartKind::kPie,
                           inst.name);
  } else {
    return Status::InvalidArgument("unknown template kind");
  }

  if (!inst.next_template.empty()) {
    // §4 composition: append the scripted continuation link.
    body += "<p>continue: " +
            HtmlLink("banks:template/" + inst.next_template,
                     inst.next_template) +
            "</p>\n";
  }
  return body;
}

}  // namespace banks
