#include "browse/html.h"

namespace banks {

std::string HtmlEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string HtmlLink(std::string_view href, std::string_view text) {
  return "<a href=\"" + HtmlEscape(href) + "\">" + HtmlEscape(text) + "</a>";
}

void HtmlWriter::Heading(int level, std::string_view text) {
  if (level < 1) level = 1;
  if (level > 6) level = 6;
  std::string tag = "h" + std::to_string(level);
  body_ += "<" + tag + ">" + HtmlEscape(text) + "</" + tag + ">\n";
}

void HtmlWriter::Paragraph(std::string_view text) {
  body_ += "<p>" + HtmlEscape(text) + "</p>\n";
}

void HtmlWriter::Raw(std::string_view markup) {
  body_ += markup;
  body_ += "\n";
}

void HtmlWriter::Table(const std::vector<std::string>& header,
                       const std::vector<std::vector<std::string>>& rows) {
  body_ += "<table border=\"1\">\n<tr>";
  for (const auto& h : header) body_ += "<th>" + h + "</th>";
  body_ += "</tr>\n";
  for (const auto& row : rows) {
    body_ += "<tr>";
    for (const auto& cell : row) body_ += "<td>" + cell + "</td>";
    body_ += "</tr>\n";
  }
  body_ += "</table>\n";
}

void HtmlWriter::OpenList() { body_ += "<ul>\n"; }

void HtmlWriter::ListItem(std::string_view markup) {
  body_ += "<li>";
  body_ += markup;
  body_ += "</li>\n";
}

void HtmlWriter::CloseList() { body_ += "</ul>\n"; }

std::string HtmlWriter::Page(std::string_view title) const {
  std::string out = "<!DOCTYPE html>\n<html><head><title>";
  out += HtmlEscape(title);
  out +=
      "</title></head>\n<body>\n";
  out += body_;
  out += "</body></html>\n";
  return out;
}

}  // namespace banks
