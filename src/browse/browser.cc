#include "browse/browser.h"

#include "browse/html.h"
#include "browse/template_registry.h"

namespace banks {

namespace {

// Cell markup for one base-table attribute: hyperlinked when it is the
// first column of an FK with a live reference.
std::string CellMarkup(const Database& db, Rid rid, size_t column) {
  const Tuple* tuple = db.Get(rid);
  if (tuple == nullptr) return "";
  auto link = FkHyperlink(db, rid, column);
  if (link.has_value()) return HtmlLink(link->target, link->text);
  return HtmlEscape(tuple->at(column).ToText());
}

}  // namespace

Result<std::string> Browser::TablePage(const std::string& table, size_t page,
                                       size_t page_size) const {
  const Table* t = db_->table(table);
  if (t == nullptr || Hidden(table)) {
    return Status::NotFound("unknown table '" + table + "'");
  }

  HtmlWriter w;
  w.Heading(1, table);
  size_t total_pages =
      page_size == 0 ? 1 : (t->num_rows() + page_size - 1) / page_size;
  w.Paragraph(std::to_string(t->num_rows()) + " rows, page " +
              std::to_string(page + 1) + "/" +
              std::to_string(std::max<size_t>(total_pages, 1)));

  std::vector<std::string> header;
  for (const auto& col : t->schema().columns()) {
    header.push_back(HtmlEscape(col.name));
  }
  header.push_back("(browse)");

  std::vector<std::vector<std::string>> rows;
  size_t begin = page * page_size;
  for (size_t r = begin; r < t->num_rows() && r < begin + page_size; ++r) {
    Rid rid{t->id(), static_cast<uint32_t>(r)};
    std::vector<std::string> cells;
    for (size_t c = 0; c < t->schema().num_columns(); ++c) {
      cells.push_back(CellMarkup(*db_, rid, c));
    }
    cells.push_back(
        HtmlLink(TupleUri(table, static_cast<uint32_t>(r)), "view"));
    rows.push_back(std::move(cells));
  }
  w.Table(header, rows);
  return w.Page(table);
}

Result<std::string> Browser::TuplePage(const std::string& table,
                                       uint32_t row) const {
  const Table* t = db_->table(table);
  if (t == nullptr || Hidden(table)) {
    return Status::NotFound("unknown table '" + table + "'");
  }
  if (row >= t->num_rows()) {
    return Status::OutOfRange("row " + std::to_string(row) + " out of range");
  }
  Rid rid{t->id(), row};

  HtmlWriter w;
  w.Heading(1, table + " tuple");
  std::vector<std::vector<std::string>> rows;
  for (size_t c = 0; c < t->schema().num_columns(); ++c) {
    rows.push_back({HtmlEscape(t->schema().columns()[c].name),
                    CellMarkup(*db_, rid, c)});
  }
  w.Table({"column", "value"}, rows);

  auto back = BackwardHyperlinks(*db_, rid);
  // Hidden referencing relations are invisible (§7 authorization).
  std::vector<Hyperlink> visible_back;
  for (const auto& link : back) {
    bool hidden = false;
    for (const auto& name : hidden_) {
      if (link.text.rfind(name + " via", 0) == 0) hidden = true;
    }
    if (!hidden) visible_back.push_back(link);
  }
  if (!visible_back.empty()) {
    w.Heading(2, "Referenced by");
    w.OpenList();
    for (const auto& link : visible_back) {
      w.ListItem(HtmlLink(link.target, link.text));
    }
    w.CloseList();
  }
  return w.Page(table + " tuple");
}

Result<std::string> Browser::RefsPage(const std::string& table, uint32_t row,
                                      const std::string& fk_name) const {
  const Table* t = db_->table(table);
  if (t == nullptr || Hidden(table)) {
    return Status::NotFound("unknown table '" + table + "'");
  }
  if (row >= t->num_rows()) {
    return Status::OutOfRange("row " + std::to_string(row) + " out of range");
  }
  Rid rid{t->id(), row};

  HtmlWriter w;
  w.Heading(1, "Tuples referencing " + table + "[" + std::to_string(row) +
                   "] via " + fk_name);
  w.OpenList();
  size_t count = 0;
  for (const auto& ref : db_->ReferencingTuples(rid)) {
    if (ref.fk_name != fk_name) continue;
    const Table* from = db_->table(ref.from.table_id);
    const Tuple* tuple = db_->Get(ref.from);
    if (from == nullptr || tuple == nullptr) continue;
    if (Hidden(from->name())) continue;
    std::string label = from->name() + tuple->ToString();
    w.ListItem(HtmlLink(TupleUri(from->name(), ref.from.row), label));
    ++count;
  }
  w.CloseList();
  w.Paragraph(std::to_string(count) + " referencing tuples");
  return w.Page("references");
}

Result<std::string> Browser::Navigate(const std::string& uri) const {
  auto parsed = ParseUri(uri);
  if (!parsed.has_value()) {
    return Status::InvalidArgument("not a banks: URI: " + uri);
  }
  switch (parsed->kind) {
    case ParsedUri::kTuple:
      return TuplePage(parsed->table, parsed->row);
    case ParsedUri::kRefs:
      return RefsPage(parsed->table, parsed->row, parsed->fk_name);
    case ParsedUri::kTemplate: {
      auto lookup = TemplateRegistry::Lookup(*db_, parsed->template_name);
      if (!lookup.ok()) return lookup.status();
      if (Hidden(lookup.value().base_table)) {
        return Status::NotFound("no template named '" +
                                parsed->template_name + "'");
      }
      return TemplateRegistry::RenderByName(*db_, parsed->template_name);
    }
  }
  return Status::InvalidArgument("unhandled banks: URI kind");
}

std::string Browser::RenderView(const TableView& view,
                                const std::string& title) const {
  HtmlWriter w;
  w.Heading(1, title);
  std::vector<std::string> header;
  for (const auto& col : view.columns()) {
    header.push_back(HtmlEscape(col.name));
  }
  std::vector<std::vector<std::string>> rows;
  for (const auto& row : view.rows()) {
    std::vector<std::string> cells;
    for (size_t c = 0; c < row.values.size(); ++c) {
      cells.push_back(HtmlEscape(row.values[c].ToText()));
    }
    rows.push_back(std::move(cells));
  }
  w.Table(header, rows);
  return w.Page(title);
}

std::string Browser::SchemaPage() const {
  HtmlWriter w;
  w.Heading(1, "Schema");
  for (const auto& name : db_->table_names()) {
    if (Hidden(name)) continue;
    const Table* t = db_->table(name);
    w.Heading(2, name);
    std::vector<std::vector<std::string>> rows;
    for (size_t c = 0; c < t->schema().num_columns(); ++c) {
      const auto& col = t->schema().columns()[c];
      bool is_pk = false;
      for (size_t pk : t->schema().primary_key()) is_pk |= (pk == c);
      rows.push_back({HtmlEscape(col.name), ValueTypeName(col.type),
                      is_pk ? "PK" : ""});
    }
    w.Table({"column", "type", "key"}, rows);
    auto fks = db_->OutgoingFks(name);
    if (!fks.empty()) {
      w.OpenList();
      for (const ForeignKey* fk : fks) {
        w.ListItem(HtmlEscape(fk->name + ": -> " + fk->ref_table));
      }
      w.CloseList();
    }
  }
  return w.Page("Schema");
}

}  // namespace banks
