#include "browse/templates.h"

#include <algorithm>
#include <cmath>

#include "browse/html.h"

namespace banks {

namespace {

std::vector<Value> SortedDistinct(const TableView& view, size_t col) {
  std::vector<Value> vals;
  for (const auto& row : view.rows()) {
    const Value& v = row.values[col];
    bool seen = false;
    for (const auto& existing : vals) {
      if (existing == v) {
        seen = true;
        break;
      }
    }
    if (!seen) vals.push_back(v);
  }
  std::sort(vals.begin(), vals.end());
  return vals;
}

size_t IndexOf(const std::vector<Value>& vals, const Value& v) {
  for (size_t i = 0; i < vals.size(); ++i) {
    if (vals[i] == v) return i;
  }
  return vals.size();
}

}  // namespace

Result<CrossTab> BuildCrossTab(const TableView& view,
                               const std::string& row_column,
                               const std::string& col_column) {
  auto rc = view.ColumnIndex(row_column);
  auto cc = view.ColumnIndex(col_column);
  if (!rc.has_value() || !cc.has_value()) {
    return Status::NotFound("cross-tab column not in view");
  }
  CrossTab ct;
  ct.row_values = SortedDistinct(view, *rc);
  ct.col_values = SortedDistinct(view, *cc);
  ct.counts.assign(ct.row_values.size(),
                   std::vector<size_t>(ct.col_values.size(), 0));
  for (const auto& row : view.rows()) {
    size_t r = IndexOf(ct.row_values, row.values[*rc]);
    size_t c = IndexOf(ct.col_values, row.values[*cc]);
    ++ct.counts[r][c];
  }
  return ct;
}

std::string RenderCrossTabHtml(const CrossTab& ct, const std::string& title) {
  HtmlWriter w;
  w.Heading(2, title);
  std::vector<std::string> header{""};
  for (const auto& cv : ct.col_values) header.push_back(HtmlEscape(cv.ToText()));
  std::vector<std::vector<std::string>> rows;
  for (size_t r = 0; r < ct.row_values.size(); ++r) {
    std::vector<std::string> cells{HtmlEscape(ct.row_values[r].ToText())};
    for (size_t c = 0; c < ct.col_values.size(); ++c) {
      cells.push_back(std::to_string(ct.counts[r][c]));
    }
    rows.push_back(std::move(cells));
  }
  w.Table(header, rows);
  return w.Page(title);
}

namespace {

void BuildLevel(const TableView& view, const std::vector<size_t>& cols,
                size_t level, const std::vector<size_t>& rows,
                std::vector<std::unique_ptr<GroupNode>>* out) {
  if (level >= cols.size()) return;
  // Distinct values at this level, in sorted order.
  std::vector<Value> vals;
  for (size_t r : rows) {
    const Value& v = view.rows()[r].values[cols[level]];
    bool seen = false;
    for (const auto& existing : vals) {
      if (existing == v) {
        seen = true;
        break;
      }
    }
    if (!seen) vals.push_back(v);
  }
  std::sort(vals.begin(), vals.end());
  for (const auto& v : vals) {
    auto node = std::make_unique<GroupNode>();
    node->value = v;
    std::vector<size_t> member_rows;
    for (size_t r : rows) {
      if (view.rows()[r].values[cols[level]] == v) member_rows.push_back(r);
    }
    node->count = member_rows.size();
    if (level + 1 == cols.size()) {
      node->row_indexes = std::move(member_rows);
    } else {
      BuildLevel(view, cols, level + 1, member_rows, &node->children);
    }
    out->push_back(std::move(node));
  }
}

void RenderGroupNode(const GroupNode& node, bool folder_style, HtmlWriter* w) {
  std::string label = folder_style ? "&#128193; " : "";  // folder glyph
  label += HtmlEscape(node.value.ToText()) + " (" +
           std::to_string(node.count) + ")";
  w->ListItem(label);
  if (!node.children.empty()) {
    w->OpenList();
    for (const auto& child : node.children) {
      RenderGroupNode(*child, folder_style, w);
    }
    w->CloseList();
  }
}

}  // namespace

Result<GroupTree> BuildGroupTree(const TableView& view,
                                 const std::vector<std::string>& levels) {
  if (levels.empty()) {
    return Status::InvalidArgument("group-by needs at least one level");
  }
  std::vector<size_t> cols;
  for (const auto& name : levels) {
    auto c = view.ColumnIndex(name);
    if (!c.has_value()) return Status::NotFound("no column '" + name + "'");
    cols.push_back(*c);
  }
  std::vector<size_t> all_rows(view.num_rows());
  for (size_t i = 0; i < all_rows.size(); ++i) all_rows[i] = i;
  GroupTree tree;
  BuildLevel(view, cols, 0, all_rows, &tree.roots);
  return tree;
}

std::string RenderGroupTreeHtml(const GroupTree& tree,
                                const std::string& title, bool folder_style) {
  HtmlWriter w;
  w.Heading(2, title);
  w.OpenList();
  for (const auto& root : tree.roots) {
    RenderGroupNode(*root, folder_style, &w);
  }
  w.CloseList();
  return w.Page(title);
}

Result<ChartSeries> BuildChartSeries(const TableView& view,
                                     const std::string& label_column,
                                     const std::string& value_column) {
  auto lc = view.ColumnIndex(label_column);
  auto vc = view.ColumnIndex(value_column);
  if (!lc.has_value() || !vc.has_value()) {
    return Status::NotFound("chart column not in view");
  }
  ChartSeries series;
  for (const auto& row : view.rows()) {
    ChartSeries::Point p;
    p.label = row.values[*lc].ToText();
    const Value& v = row.values[*vc];
    if (v.type() == ValueType::kInt) {
      p.value = static_cast<double>(v.AsInt());
    } else if (v.type() == ValueType::kDouble) {
      p.value = v.AsDouble();
    }
    series.points.push_back(std::move(p));
  }
  return series;
}

Result<ChartSeries> BuildCountSeries(const TableView& view,
                                     const std::string& label_column) {
  auto groups = view.GroupBy(label_column);
  if (!groups.ok()) return groups.status();
  ChartSeries series;
  for (const auto& [value, count] : groups.value()) {
    ChartSeries::Point p;
    p.label = value.ToText();
    p.value = static_cast<double>(count);
    series.points.push_back(std::move(p));
  }
  return series;
}

std::string RenderChartHtml(const ChartSeries& series, ChartKind kind,
                            const std::string& title) {
  HtmlWriter w;
  w.Heading(2, title);
  double max_v = 1.0;
  for (const auto& p : series.points) max_v = std::max(max_v, p.value);
  const int width = 640, height = 320, pad = 24;
  const size_t n = std::max<size_t>(series.points.size(), 1);
  std::string svg = "<svg width=\"" + std::to_string(width) + "\" height=\"" +
                    std::to_string(height + 40) + "\">\n";

  auto anchor = [](const ChartSeries::Point& p, const std::string& body) {
    if (p.drill_link.empty()) return body;
    return "<a href=\"" + HtmlEscape(p.drill_link) + "\">" + body + "</a>";
  };

  if (kind == ChartKind::kBar) {
    double bw = static_cast<double>(width - 2 * pad) / static_cast<double>(n);
    for (size_t i = 0; i < series.points.size(); ++i) {
      const auto& p = series.points[i];
      double h = (p.value / max_v) * (height - 2 * pad);
      double x = pad + static_cast<double>(i) * bw;
      double y = height - pad - h;
      std::string rect = "<rect x=\"" + std::to_string(x) + "\" y=\"" +
                         std::to_string(y) + "\" width=\"" +
                         std::to_string(bw * 0.8) + "\" height=\"" +
                         std::to_string(h) + "\" fill=\"steelblue\"><title>" +
                         HtmlEscape(p.label) + ": " +
                         std::to_string(p.value) + "</title></rect>";
      svg += anchor(p, rect) + "\n";
    }
  } else if (kind == ChartKind::kLine) {
    std::string points_attr;
    for (size_t i = 0; i < series.points.size(); ++i) {
      double x = pad + static_cast<double>(i) *
                           static_cast<double>(width - 2 * pad) /
                           static_cast<double>(std::max<size_t>(n - 1, 1));
      double y = height - pad -
                 (series.points[i].value / max_v) * (height - 2 * pad);
      points_attr += std::to_string(x) + "," + std::to_string(y) + " ";
    }
    svg += "<polyline fill=\"none\" stroke=\"steelblue\" points=\"" +
           points_attr + "\"/>\n";
  } else {  // pie
    double total = 0;
    for (const auto& p : series.points) total += p.value;
    if (total <= 0) total = 1;
    double angle = 0;
    const double cx = width / 2.0, cy = height / 2.0, r = height / 2.0 - pad;
    for (const auto& p : series.points) {
      double frac = p.value / total;
      double a0 = angle * 2 * M_PI, a1 = (angle + frac) * 2 * M_PI;
      angle += frac;
      double x0 = cx + r * std::cos(a0), y0 = cy + r * std::sin(a0);
      double x1 = cx + r * std::cos(a1), y1 = cy + r * std::sin(a1);
      int large = frac > 0.5 ? 1 : 0;
      std::string path =
          "<path d=\"M" + std::to_string(cx) + "," + std::to_string(cy) +
          " L" + std::to_string(x0) + "," + std::to_string(y0) + " A" +
          std::to_string(r) + "," + std::to_string(r) + " 0 " +
          std::to_string(large) + " 1 " + std::to_string(x1) + "," +
          std::to_string(y1) + " Z\" fill=\"hsl(" +
          std::to_string(static_cast<int>(angle * 360)) +
          ",60%,60%)\" stroke=\"white\"><title>" + HtmlEscape(p.label) +
          ": " + std::to_string(p.value) + "</title></path>";
      svg += anchor(p, path) + "\n";
    }
  }
  svg += "</svg>\n";
  w.Raw(svg);
  return w.Page(title);
}

}  // namespace banks
