// Interactive table views (§4).
//
// "Each table displayed comes with a variety of tools for interacting with
// data": project away columns, impose selections, join through foreign keys
// (both directions), group by a column, sort, paginate. A TableView is an
// immutable materialised view; every operation returns a new view. Rows
// remember their provenance Rids so hyperlinks survive transformation.
#ifndef BANKS_BROWSE_TABLE_VIEW_H_
#define BANKS_BROWSE_TABLE_VIEW_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "storage/database.h"
#include "util/status.h"

namespace banks {

/// A column of a view: qualified display name plus underlying value type.
struct ViewColumn {
  std::string name;         ///< e.g. "Paper.PaperName"
  ValueType type = ValueType::kString;
  std::string source_table; ///< table the column came from
  std::string source_column;
};

/// One view row: values aligned with columns; provenance = the Rids of all
/// base tuples that contributed (first = the view's anchor table row).
struct ViewRow {
  std::vector<Value> values;
  std::vector<Rid> provenance;
};

/// Immutable tabular view with relational-algebra-ish combinators.
class TableView {
 public:
  /// Full view of one base table.
  static Result<TableView> FromTable(const Database& db,
                                     const std::string& table);

  const std::vector<ViewColumn>& columns() const { return columns_; }
  const std::vector<ViewRow>& rows() const { return rows_; }
  size_t num_rows() const { return rows_.size(); }

  std::optional<size_t> ColumnIndex(const std::string& name) const;

  /// Keeps only the named columns (§4 "columns can be projected away").
  Result<TableView> Project(const std::vector<std::string>& keep) const;

  /// Rows where `column` equals `value` (§4 "selections ... on any column").
  Result<TableView> SelectEquals(const std::string& column,
                                 const Value& value) const;

  /// Rows where `column`'s text contains `needle` (case-insensitive).
  Result<TableView> SelectContains(const std::string& column,
                                   const std::string& needle) const;

  /// Joins in the table referenced by `fk` ("clicking on 'join' results in
  /// the referenced table being joined in, and its columns also
  /// displayed"). Rows with NULL/dangling references are kept with NULLs
  /// (outer join semantics — browsing never loses rows).
  Result<TableView> JoinFk(const Database& db, const std::string& fk_name) const;

  /// The reverse join ("from a primary key to a referencing foreign key"):
  /// one output row per referencing tuple; rows without referencers kept
  /// once with NULLs.
  Result<TableView> JoinReverseFk(const Database& db,
                                  const std::string& fk_name) const;

  /// Sorted copy (stable; NULLs first, Value ordering).
  Result<TableView> SortBy(const std::string& column, bool ascending) const;

  /// Distinct values of `column` with their row counts (§4 group-by:
  /// "only the distinct values for that column being displayed").
  Result<std::vector<std::pair<Value, size_t>>> GroupBy(
      const std::string& column) const;

  /// Rows associated with one group value ("click on any of the values to
  /// see the tuples associated with that value").
  Result<TableView> GroupRows(const std::string& column,
                              const Value& value) const;

  /// Page `page` (0-based) of `page_size` rows (§4 pagination).
  TableView Page(size_t page_size, size_t page) const;

 private:
  std::vector<ViewColumn> columns_;
  std::vector<ViewRow> rows_;
  std::string anchor_table_;  ///< table of FromTable, for FK resolution
  friend class Browser;
};

}  // namespace banks

#endif  // BANKS_BROWSE_TABLE_VIEW_H_
