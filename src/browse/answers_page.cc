#include "browse/answers_page.h"

#include <cstdio>

#include "browse/html.h"
#include "browse/hyperlink.h"

namespace banks {

std::string RenderAnswersPage(const AnswersPage& page, const DataGraph& dg,
                              const Database& db) {
  HtmlWriter out;
  out.Heading(2, "query: " + page.query_text);
  if (page.answers.empty()) {
    out.Paragraph(page.page_index == 0 ? "(no answers)" : "(no more answers)");
    return out.body();
  }

  out.OpenList();
  for (size_t i = 0; i < page.answers.size(); ++i) {
    const ConnectionTree& tree = page.answers[i];
    const size_t rank = page.page_index * page.page_size + i + 1;
    const Rid rid = dg.RidForNode(tree.root);
    const Table* table = db.table(rid.table_id);

    char prefix[64];
    std::snprintf(prefix, sizeof(prefix), "#%zu (relevance %.4f) ", rank,
                  tree.relevance);
    std::string item = HtmlEscape(prefix);
    const std::string label = NodeLabel(tree.root, dg, db);
    if (table != nullptr) {
      item += HtmlLink(TupleUri(table->name(), rid.row), label);
    } else {
      item += HtmlEscape(label);
    }
    item += "<pre>" + HtmlEscape(RenderAnswer(tree, dg, db)) + "</pre>";
    out.ListItem(item);
  }
  out.CloseList();

  if (page.has_more) {
    out.Paragraph("more answers available — pull the next page (page " +
                  std::to_string(page.page_index + 2) + ")");
  }
  return out.body();
}

}  // namespace banks
