// Automatic hyperlink generation (§4).
//
// "Every displayed foreign key attribute value becomes a hyperlink to the
// referenced tuple. In addition, primary key columns can be browsed
// backwards, to find referencing tuples, organized by referencing
// relations." Links use a stable "banks:" URI scheme the Browser resolves.
#ifndef BANKS_BROWSE_HYPERLINK_H_
#define BANKS_BROWSE_HYPERLINK_H_

#include <optional>
#include <string>
#include <vector>

#include "storage/database.h"

namespace banks {

/// A navigable link.
struct Hyperlink {
  std::string text;    ///< display text (the attribute value / table name)
  std::string target;  ///< "banks:tuple/<table>/<row>" or
                       ///< "banks:refs/<table>/<row>/<fk>"
};

/// URI helpers.
std::string TupleUri(const std::string& table, uint32_t row);
std::string RefsUri(const std::string& table, uint32_t row,
                    const std::string& fk_name);
std::string TemplateUri(const std::string& template_name);

/// Parses a "banks:" URI; returns nullopt for foreign schemes.
struct ParsedUri {
  enum Kind { kTuple, kRefs, kTemplate } kind = kTuple;
  std::string table;          // kTuple/kRefs
  uint32_t row = 0;           // kTuple/kRefs
  std::string fk_name;        // kRefs only
  std::string template_name;  // kTemplate only
};
std::optional<ParsedUri> ParseUri(const std::string& uri);

/// The hyperlink for one FK column value of a tuple, or nullopt if the
/// column is not (part of the first column of) an FK, the value is NULL,
/// or the reference dangles.
std::optional<Hyperlink> FkHyperlink(const Database& db, Rid rid,
                                     size_t column);

/// Backward-browse links for a tuple: one per foreign key referencing the
/// tuple's table, labelled "<referencing-table> via <fk>", each resolving
/// to the list of referencing tuples (§4's PK backward browsing).
std::vector<Hyperlink> BackwardHyperlinks(const Database& db, Rid rid);

}  // namespace banks

#endif  // BANKS_BROWSE_HYPERLINK_H_
