#include "browse/table_view.h"

#include <algorithm>

#include "util/string_util.h"

namespace banks {

Result<TableView> TableView::FromTable(const Database& db,
                                       const std::string& table) {
  const Table* t = db.table(table);
  if (t == nullptr) return Status::NotFound("unknown table '" + table + "'");
  TableView view;
  view.anchor_table_ = table;
  for (const auto& col : t->schema().columns()) {
    view.columns_.push_back(
        ViewColumn{table + "." + col.name, col.type, table, col.name});
  }
  view.rows_.reserve(t->num_rows());
  for (uint32_t r = 0; r < t->num_rows(); ++r) {
    ViewRow row;
    row.values = t->row(r).values();
    row.provenance = {Rid{t->id(), r}};
    view.rows_.push_back(std::move(row));
  }
  return view;
}

std::optional<size_t> TableView::ColumnIndex(const std::string& name) const {
  // Accept both qualified ("Paper.PaperName") and bare ("PaperName") names;
  // bare names must be unambiguous.
  std::optional<size_t> found;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
    if (columns_[i].source_column == name) {
      if (found.has_value()) return std::nullopt;  // ambiguous
      found = i;
    }
  }
  return found;
}

Result<TableView> TableView::Project(
    const std::vector<std::string>& keep) const {
  std::vector<size_t> idx;
  for (const auto& name : keep) {
    auto i = ColumnIndex(name);
    if (!i.has_value()) {
      return Status::NotFound("no column '" + name + "' in view");
    }
    idx.push_back(*i);
  }
  TableView out;
  out.anchor_table_ = anchor_table_;
  for (size_t i : idx) out.columns_.push_back(columns_[i]);
  out.rows_.reserve(rows_.size());
  for (const auto& row : rows_) {
    ViewRow nr;
    for (size_t i : idx) nr.values.push_back(row.values[i]);
    nr.provenance = row.provenance;
    out.rows_.push_back(std::move(nr));
  }
  return out;
}

Result<TableView> TableView::SelectEquals(const std::string& column,
                                          const Value& value) const {
  auto col = ColumnIndex(column);
  if (!col.has_value()) return Status::NotFound("no column '" + column + "'");
  TableView out;
  out.anchor_table_ = anchor_table_;
  out.columns_ = columns_;
  for (const auto& row : rows_) {
    if (row.values[*col] == value) out.rows_.push_back(row);
  }
  return out;
}

Result<TableView> TableView::SelectContains(const std::string& column,
                                            const std::string& needle) const {
  auto col = ColumnIndex(column);
  if (!col.has_value()) return Status::NotFound("no column '" + column + "'");
  TableView out;
  out.anchor_table_ = anchor_table_;
  out.columns_ = columns_;
  for (const auto& row : rows_) {
    const Value& v = row.values[*col];
    if (!v.is_null() && ContainsIgnoreCase(v.ToText(), needle)) {
      out.rows_.push_back(row);
    }
  }
  return out;
}

Result<TableView> TableView::JoinFk(const Database& db,
                                    const std::string& fk_name) const {
  const ForeignKey* fk = nullptr;
  for (const auto& f : db.foreign_keys()) {
    if (f.name == fk_name) fk = &f;
  }
  if (fk == nullptr) return Status::NotFound("unknown FK '" + fk_name + "'");
  const Table* ref = db.table(fk->ref_table);
  const Table* from = db.table(fk->table);
  if (ref == nullptr || from == nullptr) {
    return Status::NotFound("FK references unknown table");
  }

  TableView out;
  out.anchor_table_ = anchor_table_;
  out.columns_ = columns_;
  for (const auto& col : ref->schema().columns()) {
    out.columns_.push_back(ViewColumn{fk->ref_table + "." + col.name,
                                      col.type, fk->ref_table, col.name});
  }
  for (const auto& row : rows_) {
    ViewRow nr = row;
    // Resolve via the provenance tuple that belongs to the FK's table.
    std::optional<Rid> target;
    for (Rid rid : row.provenance) {
      if (db.table(rid.table_id) != nullptr &&
          db.table(rid.table_id)->name() == fk->table) {
        target = db.ResolveFk(*fk, rid);
        break;
      }
    }
    if (target.has_value()) {
      const Tuple* ref_tuple = db.Get(*target);
      for (const auto& v : ref_tuple->values()) nr.values.push_back(v);
      nr.provenance.push_back(*target);
    } else {
      for (size_t i = 0; i < ref->schema().num_columns(); ++i) {
        nr.values.push_back(Value::Null());
      }
    }
    out.rows_.push_back(std::move(nr));
  }
  return out;
}

Result<TableView> TableView::JoinReverseFk(const Database& db,
                                           const std::string& fk_name) const {
  const ForeignKey* fk = nullptr;
  for (const auto& f : db.foreign_keys()) {
    if (f.name == fk_name) fk = &f;
  }
  if (fk == nullptr) return Status::NotFound("unknown FK '" + fk_name + "'");
  const Table* referencing = db.table(fk->table);
  if (referencing == nullptr) {
    return Status::NotFound("FK references unknown table");
  }

  TableView out;
  out.anchor_table_ = anchor_table_;
  out.columns_ = columns_;
  for (const auto& col : referencing->schema().columns()) {
    out.columns_.push_back(ViewColumn{fk->table + "." + col.name, col.type,
                                      fk->table, col.name});
  }
  for (const auto& row : rows_) {
    // Referencers of the provenance tuple that belongs to the FK's
    // referenced table.
    std::vector<Reference> refs;
    for (Rid rid : row.provenance) {
      const Table* t = db.table(rid.table_id);
      if (t != nullptr && t->name() == fk->ref_table) {
        for (const auto& ref : db.ReferencingTuples(rid)) {
          if (ref.fk_name == fk_name) refs.push_back(ref);
        }
        break;
      }
    }
    if (refs.empty()) {
      ViewRow nr = row;
      for (size_t i = 0; i < referencing->schema().num_columns(); ++i) {
        nr.values.push_back(Value::Null());
      }
      out.rows_.push_back(std::move(nr));
      continue;
    }
    for (const auto& ref : refs) {
      ViewRow nr = row;
      const Tuple* tuple = db.Get(ref.from);
      for (const auto& v : tuple->values()) nr.values.push_back(v);
      nr.provenance.push_back(ref.from);
      out.rows_.push_back(std::move(nr));
    }
  }
  return out;
}

Result<TableView> TableView::SortBy(const std::string& column,
                                    bool ascending) const {
  auto col = ColumnIndex(column);
  if (!col.has_value()) return Status::NotFound("no column '" + column + "'");
  TableView out = *this;
  size_t c = *col;
  std::stable_sort(out.rows_.begin(), out.rows_.end(),
                   [c, ascending](const ViewRow& a, const ViewRow& b) {
                     return ascending ? a.values[c] < b.values[c]
                                      : b.values[c] < a.values[c];
                   });
  return out;
}

Result<std::vector<std::pair<Value, size_t>>> TableView::GroupBy(
    const std::string& column) const {
  auto col = ColumnIndex(column);
  if (!col.has_value()) return Status::NotFound("no column '" + column + "'");
  // Distinct values in first-appearance order with counts.
  std::vector<std::pair<Value, size_t>> groups;
  for (const auto& row : rows_) {
    const Value& v = row.values[*col];
    bool found = false;
    for (auto& [gv, count] : groups) {
      if (gv == v) {
        ++count;
        found = true;
        break;
      }
    }
    if (!found) groups.emplace_back(v, 1);
  }
  return groups;
}

Result<TableView> TableView::GroupRows(const std::string& column,
                                       const Value& value) const {
  return SelectEquals(column, value);
}

TableView TableView::Page(size_t page_size, size_t page) const {
  TableView out;
  out.anchor_table_ = anchor_table_;
  out.columns_ = columns_;
  if (page_size == 0) return out;
  size_t begin = page * page_size;
  for (size_t i = begin; i < rows_.size() && i < begin + page_size; ++i) {
    out.rows_.push_back(rows_[i]);
  }
  return out;
}

}  // namespace banks
