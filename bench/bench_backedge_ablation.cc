// A2 — ablation: degree-proportional backward edge weights (§2.1).
//
// "If there are more students in a department, the back edges would be
// assigned a higher weight, resulting in lower proximity (due to the
// department) for each pair of students." This bench compares the paper's
// backward-edge weighting against unit backward edges:
//   (a) pairwise student distance through small vs large departments;
//   (b) the evaluation-workload error under both weightings.
#include <cstdio>

#include "bench_common.h"
#include "core/expansion_iterator.h"

using namespace banks;
using namespace banks::bench;

namespace {

// Distance between the first two students of a department of size `n` in a
// two-department university.
double StudentPairDistance(size_t dept_size, bool unit_backward) {
  Database db;
  (void)db.CreateTable(TableSchema(
      "Dept", {{"id", ValueType::kString}}, {"id"}));
  (void)db.CreateTable(TableSchema("Student",
                                   {{"roll", ValueType::kString},
                                    {"dept", ValueType::kString}},
                                   {"roll"}));
  (void)db.AddForeignKey(
      ForeignKey{"sd", "Student", {"dept"}, "Dept", {"id"}});
  (void)db.Insert("Dept", Tuple({Value("d")}));
  for (size_t i = 0; i < dept_size; ++i) {
    (void)db.Insert("Student",
                    Tuple({Value("s" + std::to_string(i)), Value("d")}));
  }
  GraphBuildOptions options;
  options.unit_backward_edges = unit_backward;
  DataGraph dg = BuildDataGraph(db, options);
  NodeId s0 = dg.NodeForRid(Rid{db.table("Student")->id(), 0});
  NodeId s1 = dg.NodeForRid(Rid{db.table("Student")->id(), 1});
  ExpansionIterator it(dg.graph, s0);
  while (it.HasNext()) it.Next();
  return it.DistanceTo(s1);
}

}  // namespace

int main() {
  PrintHeader("bench_backedge_ablation — hub damping via backward weights",
              "§2.1 university example (no figure)");

  std::printf("\nstudent-pair distance through one shared department:\n");
  std::printf("%-12s %18s %18s\n", "dept size", "degree-weighted",
              "unit back edges");
  for (size_t size : {2, 5, 20, 100, 500}) {
    std::printf("%-12zu %18.1f %18.1f\n", size,
                StudentPairDistance(size, false),
                StudentPairDistance(size, true));
  }
  std::printf("\nshape check: with degree weighting, hub size pushes "
              "members apart; with unit\nback edges every pair looks "
              "equally close regardless of hub size (the §2.1 bug).\n");

  // Effect on the evaluation workload.
  std::printf("\nworkload error with and without degree weighting:\n");
  {
    EvalWorkload weighted(EvalDblpConfig(), EvalThesisConfig());
    BanksOptions unit_options = EvalWorkload::DefaultOptions();
    unit_options.graph.unit_backward_edges = true;
    EvalWorkload unit(EvalDblpConfig(), EvalThesisConfig(), unit_options);
    ScoringParams best;
    std::printf("%-28s %10.2f\n", "degree-weighted (paper)",
                weighted.AverageScaledError(best));
    std::printf("%-28s %10.2f\n", "unit back edges (ablated)",
                unit.AverageScaledError(best));
  }
  return 0;
}
