// bench_http_server — the HTTP serving tier measured end-to-end over
// loopback TCP: in-process HttpServer + BanksService, real sockets, real
// chunked streaming.
//
// Three sections:
//   1. Equivalence (hard): for every distinct query, the NDJSON answer
//      lines streamed by POST /query must be byte-identical — roots,
//      scores, order — to serializing the serial engine.Search() run
//      through the same BanksService::AnswerJson. This is the streaming
//      §3 contract carried over the wire; any divergence fails the bench.
//   2. Throughput: persistent keep-alive connections at widths {1,4,16},
//      each firing round-robin queries; reports qps and p50/p99
//      time-to-first-byte (send to status line). Machine-dependent, so
//      info-only.
//   3. Overload (hard): a tight pool (1 worker, max_active=1,
//      max_waiting=0) holds its only slot on a heavy streaming query
//      while cheap queries arrive — every one of them must come back as
//      a typed 429 with StatusCode kOverloaded in the JSON error body.
//      The rejection count is deterministic by construction and gated.
//
// --json <path> writes BENCH_http_server.json for the CI regression gate
// (deterministic counters: stream identity, answer counts, 429 counts;
// qps/TTFB are info).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/banks.h"
#include "datagen/dblp_gen.h"
#include "server/net/banks_service.h"
#include "server/net/http_server.h"
#include "server/net/socket.h"
#include "util/timer.h"

using namespace banks;
using namespace banks::bench;
using banks::server::net::BanksService;
using banks::server::net::BanksServiceOptions;
using banks::server::net::HttpRequest;
using banks::server::net::HttpResponseWriter;
using banks::server::net::HttpServer;
using banks::server::net::HttpServerOptions;
using banks::server::net::Socket;
using banks::server::PoolOptions;

namespace {

constexpr const char* kQueryTexts[] = {"author soumen",     "author mohan",
                                       "paper transaction", "author sunita paper",
                                       "soumen sunita",     "seltzer sunita"};
constexpr size_t kDistinct = sizeof(kQueryTexts) / sizeof(kQueryTexts[0]);

/// Minimal blocking HTTP client over the repo Socket wrapper (the lint
/// rule confines raw socket syscalls to src/server/net/socket.cc).
class BenchClient {
 public:
  explicit BenchClient(uint16_t port) {
    auto sock = Socket::ConnectLoopback(port);
    if (sock.ok()) sock_ = std::move(sock).value();
  }

  bool connected() const { return sock_.valid(); }

  bool Send(const std::string& target, const std::string& body) {
    std::string request = "POST " + target +
                          " HTTP/1.1\r\nHost: localhost\r\nContent-Length: " +
                          std::to_string(body.size()) + "\r\n\r\n" + body;
    return sock_.SendAll(request);
  }

  /// Reads status line + headers; body bytes stay in the carry buffer.
  bool ReadHead(int* status, bool* chunked) {
    size_t head_end;
    while ((head_end = carry_.find("\r\n\r\n")) == std::string::npos) {
      if (!Fill()) return false;
    }
    std::string head = carry_.substr(0, head_end);
    carry_.erase(0, head_end + 4);
    size_t sp = head.find(' ');
    if (sp == std::string::npos) return false;
    *status = std::atoi(head.c_str() + sp + 1);
    *chunked = head.find("Transfer-Encoding: chunked") != std::string::npos;
    size_t cl = head.find("Content-Length: ");
    content_length_ =
        cl == std::string::npos
            ? 0
            : std::strtoul(head.c_str() + cl + 16, nullptr, 10);
    return true;
  }

  bool ReadBody(bool chunked, std::string* body) {
    body->clear();
    if (!chunked) {
      while (carry_.size() < content_length_) {
        if (!Fill()) return false;
      }
      body->assign(carry_, 0, content_length_);
      carry_.erase(0, content_length_);
      return true;
    }
    for (;;) {
      size_t line_end;
      while ((line_end = carry_.find("\r\n")) == std::string::npos) {
        if (!Fill()) return false;
      }
      size_t size = std::strtoul(carry_.c_str(), nullptr, 16);
      carry_.erase(0, line_end + 2);
      if (size == 0) {
        while (carry_.size() < 2) {
          if (!Fill()) return false;
        }
        carry_.erase(0, 2);
        return true;
      }
      while (carry_.size() < size + 2) {
        if (!Fill()) return false;
      }
      body->append(carry_, 0, size);
      carry_.erase(0, size + 2);
    }
  }

  /// One full exchange; returns the HTTP status (0 on transport failure)
  /// and, via `ttfb_ms`, the send-to-status-line latency.
  int Query(const std::string& body, std::string* response_body,
            double* ttfb_ms = nullptr) {
    Timer t;
    if (!Send("/query", body)) return 0;
    int status = 0;
    bool chunked = false;
    if (!ReadHead(&status, &chunked)) return 0;
    if (ttfb_ms != nullptr) *ttfb_ms = t.Millis();
    if (!ReadBody(chunked, response_body)) return 0;
    return status;
  }

 private:
  bool Fill() {
    char buf[8192];
    long n = sock_.Recv(buf, sizeof(buf));
    if (n <= 0) return false;
    carry_.append(buf, static_cast<size_t>(n));
    return true;
  }

  Socket sock_;
  std::string carry_;
  size_t content_length_ = 0;
};

/// Engine + service + server bundle on a kernel-assigned port.
struct Server {
  explicit Server(PoolOptions pool_options = {}) {
    DblpDataset ds = GenerateDblp(EvalDblpConfig());
    BanksOptions options = EvalWorkload::DefaultOptions();
    engine = std::make_unique<BanksEngine>(std::move(ds.db), options);
    BanksServiceOptions service_options;
    service_options.pool = pool_options;
    service =
        std::make_unique<BanksService>(engine.get(), service_options);
    // One worker per benched connection: persistent keep-alive
    // connections pin their worker, so fewer threads than connections
    // would measure accept-queue waiting, not the serving tier.
    HttpServerOptions server_options;
    server_options.num_threads = 16;
    server = std::make_unique<HttpServer>(
        server_options,
        [this](const HttpRequest& request, HttpResponseWriter& writer) {
          service->Handle(request, writer);
        });
    ok = server->Start().ok();
  }
  ~Server() { server->Stop(); }

  std::unique_ptr<BanksEngine> engine;
  std::unique_ptr<BanksService> service;
  std::unique_ptr<HttpServer> server;
  bool ok = false;
};

/// Strips the trailing `{"done":...}` summary line off an NDJSON body.
std::vector<std::string> AnswerLines(const std::string& body) {
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < body.size()) {
    size_t nl = body.find('\n', pos);
    if (nl == std::string::npos) break;
    lines.push_back(body.substr(pos, nl - pos));
    pos = nl + 1;
  }
  if (!lines.empty()) lines.pop_back();  // the summary line
  return lines;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  size_t idx = std::min(values.size() - 1,
                        static_cast<size_t>(p * double(values.size())));
  return values[idx];
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("bench_http_server — HTTP/JSON streaming tier over loopback",
              "serving-side extension: §3 streaming carried over chunked "
              "HTTP");
  const std::string json_path = BenchReport::JsonPathFromArgs(argc, argv);
  BenchReport report("bench_http_server");

  Server server;
  if (!server.ok) {
    std::fprintf(stderr, "cannot start the bench server\n");
    return 1;
  }
  const uint16_t port = server.server->port();
  std::printf("serving %zu tables on loopback port %u\n\n",
              server.engine->db().num_tables(), port);

  // ---------------------------------------------------------- equivalence
  // Every distinct query over the wire vs. the serial engine run through
  // the one shared serializer. Hard gate: any byte of divergence fails.
  bool identical = true;
  size_t streamed_answers = 0;
  {
    BenchClient client(port);
    for (size_t i = 0; i < kDistinct; ++i) {
      auto serial = server.engine->Search({.text = kQueryTexts[i]});
      if (!serial.ok()) {
        std::printf("!! serial search failed: %s\n", kQueryTexts[i]);
        identical = false;
        continue;
      }
      std::string body;
      int status = client.Query(
          std::string("{\"text\":\"") + kQueryTexts[i] + "\"}", &body);
      std::vector<std::string> lines = AnswerLines(body);
      const auto& answers = serial.value().answers;
      bool match = status == 200 && lines.size() == answers.size();
      for (size_t r = 0; match && r < answers.size(); ++r) {
        match = lines[r] == BanksService::AnswerJson(*server.engine,
                                                     answers[r], r, false);
      }
      if (!match) {
        identical = false;
        std::printf("!! stream diverges from drained serial run: '%s'\n",
                    kQueryTexts[i]);
      }
      streamed_answers += lines.size();
    }
  }
  std::printf("equivalence: %zu queries, %zu streamed answers, "
              "byte-identical to drained serial runs: %s\n\n",
              kDistinct, streamed_answers, identical ? "yes" : "NO");
  report.Counter("http/stream_equals_drained", identical ? 1.0 : 0.0);
  report.Counter("http/streamed_answers", double(streamed_answers));

  // ----------------------------------------------------------- throughput
  // Persistent connections at widths {1,4,16}, round-robin queries.
  constexpr size_t kWidths[] = {1, 4, 16};
  constexpr size_t kRequestsPerConn = 32;
  std::printf("%-12s %10s %10s %10s %10s\n", "connections", "requests",
              "qps", "p50-ttfb", "p99-ttfb");
  PrintRule();
  for (size_t width : kWidths) {
    std::vector<double> ttfb(width * kRequestsPerConn, 0.0);
    std::atomic<size_t> failures{0};
    Timer wall;
    {
      std::vector<std::thread> clients;
      clients.reserve(width);
      for (size_t c = 0; c < width; ++c) {
        clients.emplace_back([&, c] {
          BenchClient client(port);
          if (!client.connected()) {
            failures += kRequestsPerConn;
            return;
          }
          for (size_t r = 0; r < kRequestsPerConn; ++r) {
            std::string body;
            const char* text = kQueryTexts[(c + r) % kDistinct];
            int status =
                client.Query(std::string("{\"text\":\"") + text + "\"}",
                             &body, &ttfb[c * kRequestsPerConn + r]);
            if (status != 200) ++failures;
          }
        });
      }
      for (auto& c : clients) c.join();
    }
    const double seconds = wall.Seconds();
    const size_t total = width * kRequestsPerConn;
    const double qps = double(total - failures.load()) / seconds;
    std::printf("%-12zu %10zu %10.1f %9.2fms %9.2fms\n", width, total, qps,
                Percentile(ttfb, 0.5), Percentile(ttfb, 0.99));
    const std::string prefix = "conn" + std::to_string(width) + "/";
    report.Counter(prefix + "failures", double(failures.load()));
    report.Info(prefix + "qps", qps);
    report.Info(prefix + "p50_ttfb_ms", Percentile(ttfb, 0.5));
    report.Info(prefix + "p99_ttfb_ms", Percentile(ttfb, 0.99));
  }

  // -------------------------------------------------------------- overload
  // A dedicated tier with one worker, one active slot, no wait queue. The
  // heavy query holds the slot (proved by its 200 head arriving — the
  // head is sent strictly after admission); every cheap query fired while
  // it streams must be a typed 429. Deterministic by construction.
  constexpr size_t kOverloadProbes = 20;
  size_t rejected_429 = 0;
  size_t typed_overloaded = 0;
  {
    PoolOptions pool_options;
    pool_options.num_workers = 1;
    pool_options.step_quantum = 8;
    pool_options.max_active = 1;
    pool_options.max_waiting = 0;
    Server tight(pool_options);
    if (!tight.ok) {
      std::fprintf(stderr, "cannot start the overload server\n");
      return 1;
    }
    BenchClient heavy(tight.server->port());
    int status = 0;
    bool chunked = false;
    if (!heavy.Send("/query",
                    R"({"text":"author paper","max_answers":10000})") ||
        !heavy.ReadHead(&status, &chunked) || status != 200) {
      std::fprintf(stderr, "heavy query did not start streaming\n");
      return 1;
    }
    for (size_t i = 0; i < kOverloadProbes; ++i) {
      BenchClient probe(tight.server->port());
      std::string body;
      int probe_status =
          probe.Query(R"({"text":"soumen sunita"})", &body);
      if (probe_status == 429) ++rejected_429;
      if (body.find("\"Overloaded\"") != std::string::npos) {
        ++typed_overloaded;
      }
    }
    std::string heavy_body;
    heavy.ReadBody(chunked, &heavy_body);  // drain before shutdown
  }
  const double rejection_rate =
      double(rejected_429) / double(kOverloadProbes);
  std::printf("\noverload: %zu probes against a held single-slot pool: "
              "%zu x HTTP 429 (%zu typed kOverloaded), rejection rate "
              "%.0f%%\n",
              kOverloadProbes, rejected_429, typed_overloaded,
              rejection_rate * 100);
  report.Counter("overload/rejected_429", double(rejected_429));
  report.Counter("overload/typed_overloaded", double(typed_overloaded));
  report.Info("overload/rejection_rate", rejection_rate);

  PrintRule();
  const bool overload_ok = rejected_429 == kOverloadProbes &&
                           typed_overloaded == kOverloadProbes;
  std::printf("stream equals drained serial run: %s; overload rejections "
              "all typed 429: %s\n",
              identical ? "yes" : "NO", overload_ok ? "yes" : "NO");
  if (!json_path.empty() && !report.WriteJson(json_path)) return 1;
  return (identical && overload_ok) ? 0 : 1;
}
