// E1 — Figure 2: the rendered result of the query "soumen sunita".
//
// The paper's Figure 2 shows the answer as an indented tree: the
// co-authored paper as the information node, Writes tuples as
// intermediates, and the keyword-matching Author tuples as highlighted
// leaves. This bench prints the same rendering for the top answers.
#include <cstdio>

#include "bench_common.h"

using namespace banks;
using namespace banks::bench;

int main() {
  PrintHeader("bench_fig2_query_result — result of query 'soumen sunita'",
              "Figure 2");

  EvalWorkload workload(EvalDblpConfig(), EvalThesisConfig());
  const BanksEngine& engine = workload.dblp_engine();

  auto result = engine.Search({.text = "soumen sunita"});
  if (!result.ok()) {
    std::printf("query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nquery: \"soumen sunita\"  (%zu answers, '*' = keyword "
              "node)\n\n",
              result.value().answers.size());
  int rank = 1;
  for (const auto& tree : result.value().answers) {
    std::printf("Answer %d  (relevance %.4f, tree weight %.1f, root %s)\n",
                rank++, tree.relevance, tree.tree_weight,
                engine.RootLabel(tree).c_str());
    std::printf("%s\n", engine.Render(tree).c_str());
    if (rank > 4) break;  // the figure shows the leading answers
  }
  std::printf("paper: the top answer is the co-authored paper"
              " (ChakrabartiSD98)\nwith paths through Writes tuples to both"
              " authors.\n");
  return 0;
}
