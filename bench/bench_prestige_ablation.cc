// A7 — prestige ablation: none vs indegree vs PageRank transfer (§2.2/§7).
//
// The paper uses indegree prestige and notes PageRank-style authority
// transfer "can be easily added". This bench compares the evaluation-
// workload error with prestige disabled, indegree (the paper's choice)
// and PageRank applied to the data graph.
#include <cstdio>

#include "bench_common.h"
#include "graph/prestige.h"

using namespace banks;
using namespace banks::bench;

namespace {

double ErrorWithPageRank(const EvalWorkload& workload) {
  // Re-rank with PageRank node weights by rebuilding engines is costly;
  // instead score queries against engines whose graphs get PageRank
  // weights. BanksEngine owns its graph, so we rebuild datasets here.
  BanksOptions options = EvalWorkload::DefaultOptions();
  EvalWorkload pr_workload(EvalDblpConfig(), EvalThesisConfig(), options);
  // Overwrite node weights in both engines' graphs.
  for (const BanksEngine* engine :
       {&pr_workload.dblp_engine(), &pr_workload.thesis_engine()}) {
    auto* graph = const_cast<FrozenGraph*>(&engine->data_graph().graph);
    auto pr = PageRankPrestige(*graph);
    // Scale to a comparable magnitude (prestige is normalised by max).
    ApplyPrestige(graph, pr);
  }
  ScoringParams best;
  (void)workload;
  return pr_workload.AverageScaledError(best);
}

}  // namespace

int main() {
  PrintHeader("bench_prestige_ablation — none vs indegree vs PageRank",
              "§2.2 node weights; §7 authority transfer (no figure)");

  ScoringParams best;  // lambda = 0.2, EdgeLog

  BanksOptions no_prestige = EvalWorkload::DefaultOptions();
  no_prestige.graph.indegree_prestige = false;
  EvalWorkload none(EvalDblpConfig(), EvalThesisConfig(), no_prestige);

  EvalWorkload indegree(EvalDblpConfig(), EvalThesisConfig());

  std::printf("\n%-28s %10s\n", "prestige model", "error");
  std::printf("%-28s %10.2f\n", "none (weights = 0)",
              none.AverageScaledError(best));
  std::printf("%-28s %10.2f\n", "indegree (paper)",
              indegree.AverageScaledError(best));
  std::printf("%-28s %10.2f\n", "PageRank transfer (§7)",
              ErrorWithPageRank(indegree));
  std::printf("\nshape check: prestige is what separates C. Mohan from the "
              "other Mohans and the\nGray classics from title-only matches; "
              "disabling it hurts, transfer keeps parity.\n");
  return 0;
}
