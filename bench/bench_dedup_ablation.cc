// A3 — ablation: duplicate suppression and root pruning (§3).
//
// The backward search discards (a) trees whose root is a spurious
// single-child junction and (b) trees isomorphic-modulo-direction to an
// already-held answer. This bench reports how much of the generated stream
// those two rules remove across the evaluation workload — i.e. how much
// duplicate work the paper's rules save the user from seeing.
#include <cstdio>

#include "bench_common.h"

using namespace banks;
using namespace banks::bench;

int main() {
  PrintHeader("bench_dedup_ablation — generated vs pruned vs emitted trees",
              "§3 duplicate handling (no figure)");

  EvalWorkload workload(EvalDblpConfig(), EvalThesisConfig());

  std::printf("\n%-22s %10s %12s %12s %10s\n", "query", "generated",
              "root-pruned", "duplicates", "emitted");
  size_t total_gen = 0, total_pruned = 0, total_dup = 0, total_emit = 0;
  for (const auto& q : workload.queries()) {
    const BanksEngine& engine = workload.engine_for(q);
    auto result = engine.Search({.text = q.text});
    if (!result.ok()) continue;
    const SearchStats& st = result.value().stats;
    std::printf("%-22s %10zu %12zu %12zu %10zu\n", q.name.c_str(),
                st.trees_generated, st.trees_pruned_root,
                st.duplicates_discarded, st.answers_emitted);
    total_gen += st.trees_generated;
    total_pruned += st.trees_pruned_root;
    total_dup += st.duplicates_discarded;
    total_emit += st.answers_emitted;
  }
  PrintRule();
  std::printf("%-22s %10zu %12zu %12zu %10zu\n", "total", total_gen,
              total_pruned, total_dup, total_emit);
  if (total_gen > 0) {
    std::printf("\n%.1f%% of generated trees were duplicates or spurious "
                "rootings —\nthe §3 rules keep them out of the result "
                "stream.\n",
                100.0 * static_cast<double>(total_pruned + total_dup) /
                    static_cast<double>(total_gen));
  }
  return 0;
}
