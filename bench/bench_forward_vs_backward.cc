// A6 — extension (§7): forward search from selective keywords.
//
// "Query evaluation with keywords matching metadata can be relatively
// slow, since a large number of tuples may be defined to be relevant ...
// We are working on techniques to speed up such queries by not performing
// backward search from large numbers of nodes, and instead searching
// forwards from probable information nodes corresponding to more selective
// keywords." This bench runs queries pairing one selective keyword with
// one metadata keyword (every Author tuple matches "author") and compares
// backward vs forward expanding search.
#include <cstdio>

#include "bench_common.h"
#include "core/forward_search.h"
#include "util/timer.h"

using namespace banks;
using namespace banks::bench;

int main() {
  PrintHeader("bench_forward_vs_backward — metadata-heavy keyword queries",
              "§7 ongoing work (no figure)");

  DblpConfig config = EvalDblpConfig();
  config.num_authors = 2'000;
  config.num_papers = 4'000;
  DblpDataset ds = GenerateDblp(config);
  BanksEngine engine(std::move(ds.db), EvalWorkload::DefaultOptions());
  const DataGraph& dg = engine.data_graph();

  const char* queries[] = {"author soumen", "author mohan",
                           "paper transaction", "writes sunita"};
  std::printf("\n%-20s %10s | %12s %10s | %12s %10s\n", "query",
              "|S_meta|", "bwd(ms)", "answers", "fwd(ms)", "answers");
  for (const char* q : queries) {
    auto parsed = ParseQuery(q);
    KeywordResolver resolver(engine.db(), dg, engine.inverted_index(),
                             engine.metadata_index());
    auto sets = resolver.ResolveAll(parsed, engine.options().match);
    size_t max_set = 0;
    for (const auto& s : sets) max_set = std::max(max_set, s.size());
    bool viable = true;
    for (const auto& s : sets) viable &= !s.empty();
    if (!viable) {
      std::printf("%-20s %10s\n", q, "(no match)");
      continue;
    }

    Timer tb;
    SearchOptions bopts = engine.options().search;
    BackwardSearch bs(dg, bopts);
    auto bwd = bs.Run(sets);
    double bwd_ms = tb.Millis();

    Timer tf;
    ForwardSearchOptions fopts;
    fopts.excluded_root_tables = bopts.excluded_root_tables;
    ForwardSearch fs(dg, fopts);
    auto fwd = fs.Run(sets);
    double fwd_ms = tf.Millis();

    std::printf("%-20s %10zu | %12.1f %10zu | %12.1f %10zu\n", q, max_set,
                bwd_ms, bwd.size(), fwd_ms, fwd.size());
  }
  std::printf("\nshape check: when one keyword matches thousands of tuples, "
              "forward search from the\nselective keyword's neighbourhood "
              "avoids the per-matching-node iterator blowup.\n");
  return 0;
}
