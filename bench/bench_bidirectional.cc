// Strategy shoot-out: backward (§3) vs forward (§7) vs bidirectional
// (BANKS-II-style) expansion on the same DBLP-style workload.
//
// Queries pair selective keywords (author names) with low-selectivity
// metadata keywords ("author" matches every Author tuple, "paper" every
// Paper). Backward search pays one reverse iterator per matching node;
// forward search pivots on the most selective term; bidirectional keeps
// the selective terms' backward iterators and covers the metadata terms
// with forward probes from candidate roots, expanding whichever frontier
// is globally cheapest. The report compares iterator_visits (total
// frontier expansions of any kind) plus the streaming latencies: ttfa
// (time to first answer out of the AnswerStream) and ttk (time until the
// stream is drained, i.e. all k answers) — the §3 engine emits answers
// incrementally, so ttfa << ttk wherever generation is spread out.
// Forward search ranks its candidate roots only once the root budget is
// spent, so its ttfa ~ ttk by design.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/answer_stream.h"
#include "core/backward_search.h"
#include "core/bidirectional_search.h"
#include "core/forward_search.h"
#include "util/timer.h"

using namespace banks;
using namespace banks::bench;

namespace {

struct StrategyRow {
  double ttfa_ms = 0;  // time to first streamed answer
  double ttk_ms = 0;   // time to all k answers (stream drained)
  size_t first_visits = 0;  // iterator visits when the first answer surfaced
  size_t visits = 0;
  size_t answers = 0;
};

StrategyRow RunOne(const DataGraph& dg, SearchStrategy strategy,
                   const SearchOptions& base,
                   const std::vector<std::vector<NodeId>>& sets) {
  SearchOptions options = base;
  options.strategy = strategy;
  auto search = CreateExpansionSearch(dg, options);
  StrategyRow row;
  Timer t;
  search->Begin(sets);
  AnswerStream stream(search.get());
  while (auto answer = stream.Next()) {
    if (answer->rank == 0) {
      row.ttfa_ms = t.Millis();
      row.first_visits = stream.stats().iterator_visits;
    }
    ++row.answers;
  }
  row.ttk_ms = t.Millis();
  row.visits = stream.stats().iterator_visits;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("bench_bidirectional — backward vs forward vs bidirectional",
              "§3 backward search, §7 forward search, BANKS-II bidirectional");
  const std::string json_path = BenchReport::JsonPathFromArgs(argc, argv);
  BenchReport report("bench_bidirectional");

  DblpConfig config = EvalDblpConfig();
  config.num_authors = 2'000;
  config.num_papers = 4'000;
  DblpDataset ds = GenerateDblp(config);
  BanksEngine engine(std::move(ds.db), EvalWorkload::DefaultOptions());
  const DataGraph& dg = engine.data_graph();
  std::printf("graph: %zu nodes / %zu edges\n", dg.graph.num_nodes(),
              dg.graph.num_edges());

  const char* queries[] = {"author soumen",      "author mohan",
                           "paper transaction",  "author sunita paper",
                           "soumen sunita",      "seltzer sunita"};

  std::printf("\n%-22s %7s | %9s %7s %7s | %9s %7s %7s | %9s %7s %7s\n",
              "query", "max|S|", "bwd-vis", "b-ttfa", "b-ttk", "fwd-vis",
              "f-ttfa", "f-ttk", "bidi-vis", "bd-ttfa", "bd-ttk");
  PrintRule();

  bool bidi_never_worse = true;
  bool streams_early = false;
  for (const char* q : queries) {
    auto parsed = ParseQuery(q);
    KeywordResolver resolver(engine.db(), dg, engine.inverted_index(),
                             engine.metadata_index());
    auto sets = resolver.ResolveAll(parsed, engine.options().match);
    size_t max_set = 0;
    bool viable = !sets.empty();
    for (const auto& s : sets) {
      max_set = std::max(max_set, s.size());
      viable &= !s.empty();
    }
    if (!viable) {
      std::printf("%-22s %7s\n", q, "(no match)");
      continue;
    }

    const SearchOptions& base = engine.options().search;
    StrategyRow bwd = RunOne(dg, SearchStrategy::kBackward, base, sets);
    StrategyRow fwd = RunOne(dg, SearchStrategy::kForward, base, sets);
    StrategyRow bidi = RunOne(dg, SearchStrategy::kBidirectional, base, sets);
    bidi_never_worse &= bidi.visits <= bwd.visits;
    const StrategyRow* rows[] = {&bwd, &fwd, &bidi};
    const char* names[] = {"backward", "forward", "bidirectional"};
    for (int s = 0; s < 3; ++s) {
      const std::string prefix = std::string(q) + "/" + names[s] + "/";
      report.Counter(prefix + "visits", double(rows[s]->visits));
      report.Counter(prefix + "first_visits", double(rows[s]->first_visits));
      report.Counter(prefix + "answers", double(rows[s]->answers));
      report.Info(prefix + "ttfa_ms", rows[s]->ttfa_ms);
      report.Info(prefix + "ttk_ms", rows[s]->ttk_ms);
    }
    // Streaming invariant with teeth: on some multi-answer query the
    // first answer must surface with strictly fewer visits than the full
    // run needs (== everywhere would mean streaming degraded to batch;
    // equality on individual queries is legitimate when the output heap
    // only fills at the very end of the expansion).
    streams_early |= bwd.answers > 1 && bwd.first_visits < bwd.visits;
    streams_early |= bidi.answers > 1 && bidi.first_visits < bidi.visits;

    std::printf(
        "%-22s %7zu | %9zu %7.1f %7.1f | %9zu %7.1f %7.1f | %9zu %7.1f "
        "%7.1f\n",
        q, max_set, bwd.visits, bwd.ttfa_ms, bwd.ttk_ms, fwd.visits,
        fwd.ttfa_ms, fwd.ttk_ms, bidi.visits, bidi.ttfa_ms, bidi.ttk_ms);
    std::printf("%-22s %7s | answers: bwd=%zu fwd=%zu bidi=%zu  "
                "first-answer visits: bwd=%zu bidi=%zu\n",
                "", "", bwd.answers, fwd.answers, bidi.answers,
                bwd.first_visits, bidi.first_visits);
  }

  PrintRule();
  std::printf(
      "bidirectional <= backward visits on every query: %s\n"
      "first answer strictly cheaper than the full run somewhere: %s\n"
      "\nshape check: metadata keywords (\"author\", \"paper\") make "
      "backward search start one\niterator per matching tuple; "
      "bidirectional covers those terms with forward probes\nfrom candidate "
      "roots and matches plain backward search exactly when every term\nis "
      "selective. ttfa is the streaming time-to-first-answer; ttk drains "
      "the stream.\n",
      bidi_never_worse ? "yes" : "NO", streams_early ? "yes" : "NO");
  if (!json_path.empty() && !report.WriteJson(json_path)) return 1;
  return (bidi_never_worse && streams_early) ? 0 : 1;
}
