// Strategy shoot-out: backward (§3) vs forward (§7) vs bidirectional
// (BANKS-II-style) expansion on the same DBLP-style workload.
//
// Queries pair selective keywords (author names) with low-selectivity
// metadata keywords ("author" matches every Author tuple, "paper" every
// Paper). Backward search pays one reverse iterator per matching node;
// forward search pivots on the most selective term; bidirectional keeps
// the selective terms' backward iterators and covers the metadata terms
// with forward probes from candidate roots, expanding whichever frontier
// is globally cheapest. The report compares iterator_visits (total
// frontier expansions of any kind) and wall time.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/backward_search.h"
#include "core/bidirectional_search.h"
#include "core/forward_search.h"
#include "util/timer.h"

using namespace banks;
using namespace banks::bench;

namespace {

struct StrategyRow {
  double ms = 0;
  size_t visits = 0;
  size_t answers = 0;
};

StrategyRow RunOne(const DataGraph& dg, SearchStrategy strategy,
                   const SearchOptions& base,
                   const std::vector<std::vector<NodeId>>& sets) {
  SearchOptions options = base;
  options.strategy = strategy;
  auto search = CreateExpansionSearch(dg, options);
  Timer t;
  auto answers = search->Run(sets);
  StrategyRow row;
  row.ms = t.Millis();
  row.visits = search->stats().iterator_visits;
  row.answers = answers.size();
  return row;
}

}  // namespace

int main() {
  PrintHeader("bench_bidirectional — backward vs forward vs bidirectional",
              "§3 backward search, §7 forward search, BANKS-II bidirectional");

  DblpConfig config = EvalDblpConfig();
  config.num_authors = 2'000;
  config.num_papers = 4'000;
  DblpDataset ds = GenerateDblp(config);
  BanksEngine engine(std::move(ds.db), EvalWorkload::DefaultOptions());
  const DataGraph& dg = engine.data_graph();
  std::printf("graph: %zu nodes / %zu edges\n", dg.graph.num_nodes(),
              dg.graph.num_edges());

  const char* queries[] = {"author soumen",      "author mohan",
                           "paper transaction",  "author sunita paper",
                           "soumen sunita",      "seltzer sunita"};

  std::printf("\n%-22s %8s | %10s %8s | %10s %8s | %10s %8s\n", "query",
              "max|S|", "bwd-visit", "bwd-ms", "fwd-visit", "fwd-ms",
              "bidi-visit", "bidi-ms");
  PrintRule();

  bool bidi_never_worse = true;
  for (const char* q : queries) {
    auto parsed = ParseQuery(q);
    KeywordResolver resolver(engine.db(), dg, engine.inverted_index(),
                             engine.metadata_index());
    auto sets = resolver.ResolveAll(parsed, engine.options().match);
    size_t max_set = 0;
    bool viable = !sets.empty();
    for (const auto& s : sets) {
      max_set = std::max(max_set, s.size());
      viable &= !s.empty();
    }
    if (!viable) {
      std::printf("%-22s %8s\n", q, "(no match)");
      continue;
    }

    const SearchOptions& base = engine.options().search;
    StrategyRow bwd = RunOne(dg, SearchStrategy::kBackward, base, sets);
    StrategyRow fwd = RunOne(dg, SearchStrategy::kForward, base, sets);
    StrategyRow bidi = RunOne(dg, SearchStrategy::kBidirectional, base, sets);
    bidi_never_worse &= bidi.visits <= bwd.visits;

    std::printf(
        "%-22s %8zu | %10zu %8.1f | %10zu %8.1f | %10zu %8.1f\n", q, max_set,
        bwd.visits, bwd.ms, fwd.visits, fwd.ms, bidi.visits, bidi.ms);
    std::printf("%-22s %8s | answers: bwd=%zu fwd=%zu bidi=%zu\n", "", "",
                bwd.answers, fwd.answers, bidi.answers);
  }

  PrintRule();
  std::printf(
      "bidirectional <= backward visits on every query: %s\n"
      "\nshape check: metadata keywords (\"author\", \"paper\") make "
      "backward search start one\niterator per matching tuple; "
      "bidirectional covers those terms with forward probes\nfrom candidate "
      "roots and matches plain backward search exactly when every term\nis "
      "selective.\n",
      bidi_never_worse ? "yes" : "NO");
  return bidi_never_worse ? 0 : 1;
}
