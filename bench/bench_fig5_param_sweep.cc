// E3/E7 — Figure 5: error scores vs parameter choices.
//
// Replicates §5.3's methodology: 7 queries, top-10 answers, ideal-answer
// rank differences summed into a raw error, scaled so the worst case is
// 100, missing answers at rank 11. Sweeps lambda x EdgeLog (the Figure 5
// surface) and then the remaining §2.3 combinations (NodeLog and the
// additive/multiplicative mode); the three log x multiplicative combos the
// paper discarded are skipped just as in the paper.
#include <cstdio>

#include "bench_common.h"

using namespace banks;
using namespace banks::bench;

int main() {
  PrintHeader("bench_fig5_param_sweep — error score vs parameter choices",
              "Figure 5 + the §5.3 conclusions");

  EvalWorkload workload(EvalDblpConfig(), EvalThesisConfig());

  const double lambdas[] = {0.0, 0.2, 0.5, 0.8, 1.0};

  std::printf("\nFigure 5 surface: average scaled error (7 queries)\n");
  std::printf("%-10s %14s %14s\n", "lambda", "EdgeLog=0", "EdgeLog=1");
  double best_err = 1e9, best_lambda = -1;
  bool best_log = false;
  for (double lambda : lambdas) {
    double err[2];
    for (int log = 0; log < 2; ++log) {
      ScoringParams p;
      p.lambda = lambda;
      p.edge_log = (log == 1);
      p.node_log = false;
      p.multiplicative = false;
      err[log] = workload.AverageScaledError(p);
      if (err[log] < best_err) {
        best_err = err[log];
        best_lambda = lambda;
        best_log = (log == 1);
      }
    }
    std::printf("%-10.1f %14.2f %14.2f\n", lambda, err[0], err[1]);
  }
  std::printf("\nbest setting: lambda=%.1f EdgeLog=%d (error %.2f)\n",
              best_lambda, best_log ? 1 : 0, best_err);
  std::printf("paper: lambda=0.2 with log scaling of edge weights did best"
              " (error ~0);\n       lambda=1 did worst (~15); lambda in"
              " {0, 0.8} scored 8-12.\n");

  // Per-query breakdown at the paper's best setting.
  std::printf("\nper-query scaled error at lambda=0.2, EdgeLog=1:\n");
  ScoringParams best;
  for (const auto& q : workload.queries()) {
    std::printf("  %-22s %8.2f\n", q.name.c_str(),
                workload.ScaledError(q, best));
  }

  // The remaining §2.3 combinations (paper: "mode of score combination has
  // almost no impact"; "for node weights, log scaling gave the same
  // ranking").
  std::printf("\nall non-discarded combinations at lambda=0.2:\n");
  std::printf("%-34s %10s\n", "combination", "error");
  for (bool edge_log : {false, true}) {
    for (bool node_log : {false, true}) {
      for (bool mult : {false, true}) {
        ScoringParams p{edge_log, node_log, mult, 0.2};
        if (p.IsDiscardedCombination()) continue;  // as in the paper
        std::printf("%-34s %10.2f\n", p.Name().c_str(),
                    workload.AverageScaledError(p));
      }
    }
  }
  std::printf("\npaper: additive vs multiplicative had almost no impact;\n"
              "       node-weight log scaling gave the same ranking.\n");
  return 0;
}
