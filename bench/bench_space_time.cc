// E5/E6 — §5.2 space and time.
//
// The paper: "For a bibliographic database with 100K nodes and 300K edges,
// memory utilization was around 120 MB [Java] ... The graph currently takes
// about 2 minutes to load ... queries take about a second to a few seconds."
// This bench generates a synthetic DBLP at the same graph scale, measures
// graph construction time, in-memory graph size, keyword-index size, and
// per-query latency on the evaluation workload queries.
#include <cstdio>

#include "bench_common.h"
#include "util/timer.h"

using namespace banks;
using namespace banks::bench;

int main() {
  PrintHeader("bench_space_time — graph footprint and query latency",
              "§5.2 (100K nodes / 300K edges; Java: ~120 MB, ~2 min load, "
              "~1s-few s per query)");

  Timer gen_timer;
  DblpDataset ds = GenerateDblp(PaperScaleDblpConfig());
  double gen_s = gen_timer.Seconds();

  BanksOptions options = EvalWorkload::DefaultOptions();

  Timer build_timer;
  BanksEngine engine(std::move(ds.db), options);
  double build_s = build_timer.Seconds();

  const DataGraph& dg = engine.data_graph();
  std::printf("\ndataset generation: %.2f s\n", gen_s);
  std::printf("engine build (index + metadata + graph): %.2f s   "
              "(paper: ~120 s in Java)\n", build_s);
  std::printf("graph: %zu nodes, %zu directed edges\n",
              dg.graph.num_nodes(), dg.graph.num_edges());
  std::printf("graph memory: %.1f MB   (paper: ~120 MB in Java)\n",
              dg.MemoryBytes() / (1024.0 * 1024.0));
  std::printf("inverted index: %zu keywords, %zu postings\n",
              engine.inverted_index().num_keywords(),
              engine.inverted_index().num_postings());

  const char* queries[] = {"soumen sunita", "seltzer sunita",   "mohan",
                           "transaction",   "gray transaction", "database",
                           "query optimization"};
  std::printf("\n%-24s %10s %10s %12s %10s\n", "query", "answers",
              "time(ms)", "visits", "trees");
  for (const char* q : queries) {
    Timer t;
    auto result = engine.Search({.text = q});
    double ms = t.Millis();
    if (!result.ok()) {
      std::printf("%-24s %10s\n", q, "ERROR");
      continue;
    }
    std::printf("%-24s %10zu %10.1f %12zu %10zu\n", q,
                result.value().answers.size(), ms,
                result.value().stats.iterator_visits,
                result.value().stats.trees_generated);
  }
  std::printf("\npaper: about a second to a few seconds per query on this "
              "scale (Java prototype).\n");
  return 0;
}
