// Shared helpers for the experiment benches: a fixed evaluation scale,
// simple table printing, and machine-readable BENCH_*.json reports for
// the CI regression gate. Every bench prints a deterministic,
// self-describing report mapping back to the paper's figures (see
// DESIGN.md §4).
#ifndef BANKS_BENCH_BENCH_COMMON_H_
#define BANKS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "eval/workload.h"

namespace banks::bench {

/// Standard evaluation scale used by the quality benches (large enough for
/// realistic competition, small enough to run in seconds).
inline DblpConfig EvalDblpConfig() {
  DblpConfig config;
  config.num_authors = 400;
  config.num_papers = 800;
  config.seed = 42;
  return config;
}

inline ThesisConfig EvalThesisConfig() {
  ThesisConfig config;
  config.num_faculty = 120;
  config.num_students = 800;
  config.seed = 7;
  return config;
}

/// The ~100K node / ~300K edge scale of the paper's §5.2 experiment:
/// nodes = authors + papers + writes + cites; edges = 2 directed per link,
/// 2 links per Writes/Cites tuple.
inline DblpConfig PaperScaleDblpConfig() {
  DblpConfig config;
  config.num_authors = 12'000;
  config.num_papers = 20'000;
  config.authors_per_paper_mean = 2.2;
  config.cites_per_paper_mean = 1.2;
  config.seed = 42;
  return config;
}

inline void PrintRule(char c = '-') {
  for (int i = 0; i < 78; ++i) std::putchar(c);
  std::putchar('\n');
}

inline void PrintHeader(const std::string& title, const std::string& paper_ref) {
  PrintRule('=');
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  PrintRule('=');
}

/// Machine-readable bench report, written as BENCH_<name>.json for CI.
///
/// Two metric classes:
///   Counter — deterministic (iterator visits, answer counts): compared
///             against the checked-in baseline by
///             tools/check_bench_regression.py, which fails the job on a
///             >10% regression.
///   Info    — timing / throughput (ttfa, ttk, qps): uploaded for trend
///             inspection but never gated (they vary with the machine).
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void Counter(const std::string& key, double value) {
    counters_.emplace_back(key, value);
  }
  void Info(const std::string& key, double value) {
    info_.emplace_back(key, value);
  }

  /// Writes {"bench":..., "counters":{...}, "info":{...}}. Returns false
  /// (with a message on stderr) if the file cannot be written.
  bool WriteJson(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n", name_.c_str());
    WriteSection(f, "counters", counters_, /*trailing_comma=*/true);
    WriteSection(f, "info", info_, /*trailing_comma=*/false);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

  /// Handles the conventional trailing `--json <path>` bench argument:
  /// returns the path or "" when absent/malformed.
  static std::string JsonPathFromArgs(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--json") return argv[i + 1];
    }
    return "";
  }

 private:
  using Entries = std::vector<std::pair<std::string, double>>;

  static void WriteSection(std::FILE* f, const char* section,
                           const Entries& entries, bool trailing_comma) {
    std::fprintf(f, "  \"%s\": {", section);
    for (size_t i = 0; i < entries.size(); ++i) {
      std::fprintf(f, "%s\n    \"%s\": %.6g", i == 0 ? "" : ",",
                   entries[i].first.c_str(), entries[i].second);
    }
    std::fprintf(f, "\n  }%s\n", trailing_comma ? "," : "");
  }

  std::string name_;
  Entries counters_;
  Entries info_;
};

}  // namespace banks::bench

#endif  // BANKS_BENCH_BENCH_COMMON_H_
