// Shared helpers for the experiment benches: a fixed evaluation scale and
// simple table printing. Every bench prints a deterministic, self-describing
// report mapping back to the paper's figures (see DESIGN.md §4).
#ifndef BANKS_BENCH_BENCH_COMMON_H_
#define BANKS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "eval/workload.h"

namespace banks::bench {

/// Standard evaluation scale used by the quality benches (large enough for
/// realistic competition, small enough to run in seconds).
inline DblpConfig EvalDblpConfig() {
  DblpConfig config;
  config.num_authors = 400;
  config.num_papers = 800;
  config.seed = 42;
  return config;
}

inline ThesisConfig EvalThesisConfig() {
  ThesisConfig config;
  config.num_faculty = 120;
  config.num_students = 800;
  config.seed = 7;
  return config;
}

/// The ~100K node / ~300K edge scale of the paper's §5.2 experiment:
/// nodes = authors + papers + writes + cites; edges = 2 directed per link,
/// 2 links per Writes/Cites tuple.
inline DblpConfig PaperScaleDblpConfig() {
  DblpConfig config;
  config.num_authors = 12'000;
  config.num_papers = 20'000;
  config.authors_per_paper_mean = 2.2;
  config.cites_per_paper_mean = 1.2;
  config.seed = 42;
  return config;
}

inline void PrintRule(char c = '-') {
  for (int i = 0; i < 78; ++i) std::putchar(c);
  std::putchar('\n');
}

inline void PrintHeader(const std::string& title, const std::string& paper_ref) {
  PrintRule('=');
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  PrintRule('=');
}

}  // namespace banks::bench

#endif  // BANKS_BENCH_BENCH_COMMON_H_
