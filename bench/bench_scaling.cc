// A5 — scaling: build time and query latency vs database size.
//
// §5.2 concludes "it is feasible to use BANKS for moderately large
// databases"; this bench quantifies how engine build and query latency
// grow from 10K to ~130K graph nodes.
#include <cstdio>

#include "bench_common.h"
#include "util/timer.h"

using namespace banks;
using namespace banks::bench;

int main() {
  PrintHeader("bench_scaling — build and query cost vs database size",
              "§5.2 feasibility claim (no figure)");

  struct Scale {
    size_t authors;
    size_t papers;
  };
  const Scale scales[] = {
      {1'000, 2'000}, {3'000, 5'000}, {6'000, 10'000}, {12'000, 20'000},
      {18'000, 30'000}};

  std::printf("\n%-9s %9s %10s | %10s | %14s %14s\n", "authors", "papers",
              "nodes", "build(s)", "q latency(ms)", "visits");
  for (const Scale& s : scales) {
    DblpConfig config;
    config.num_authors = s.authors;
    config.num_papers = s.papers;
    config.authors_per_paper_mean = 2.2;
    config.cites_per_paper_mean = 1.2;
    DblpDataset ds = GenerateDblp(config);
    Timer build_timer;
    BanksEngine engine(std::move(ds.db), EvalWorkload::DefaultOptions());
    double build_s = build_timer.Seconds();

    // Median-ish latency across three representative queries.
    const char* queries[] = {"soumen sunita", "transaction",
                             "gray transaction"};
    double total_ms = 0;
    size_t total_visits = 0;
    for (const char* q : queries) {
      Timer t;
      auto result = engine.Search({.text = q});
      total_ms += t.Millis();
      if (result.ok()) total_visits += result.value().stats.iterator_visits;
    }
    std::printf("%-9zu %9zu %10zu | %10.2f | %14.1f %14zu\n", s.authors,
                s.papers, engine.data_graph().graph.num_nodes(), build_s,
                total_ms / 3.0, total_visits / 3);
  }
  std::printf("\nshape check: build scales near-linearly; query latency "
              "stays interactive at the paper's 100K-node scale.\n");
  return 0;
}
