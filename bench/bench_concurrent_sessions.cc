// bench_concurrent_sessions — SessionPool throughput, latency and
// deadline behaviour on the DBLP workload.
//
// Three sections:
//   1. Equivalence: every pooled session must render byte-identical
//      answers to its serial OpenSession+drain run — concurrency is
//      transparent (shared immutable snapshot, confined steppers, work
//      stealing migrates sessions whole). This is a hard failure if
//      violated.
//   2. Scaling: the same query list through pools of 1/2/4/8 workers,
//      submitted and drained by 4 submitter threads. Every mode is
//      measured over several interleaved rounds and scored best-of (an
//      external load spike on a shared runner slows whichever round it
//      lands on; the best round approximates unloaded capability).
//      Reports throughput (queries/s), speedup over serial draining,
//      per-query p50/p99 submit-to-drained latency, and the scheduler
//      counters that attribute the result (steals vs local pops,
//      answer-publication batching, average adaptive quantum).
//      Rendering answer transcripts happens outside the timed region in
//      both modes: the bench measures serving (open/pump/drain), not the
//      presentation layer.
//      Hardware-aware floors: with >= 8 hardware threads the 8-worker
//      pool must sustain >= 4x serial throughput and every worker count
//      at least half of perfect scaling; with fewer threads the floors
//      scale down; on a single-core machine only the scheduling-overhead
//      bound is checkable (pool >= 0.55x serial at every worker count —
//      a cooperative pool cannot out-run serial without real
//      parallelism, and OS-timeslice interleaving of submitters and
//      workers on one core costs real cache locality that multicore
//      overlap would win back).
//   3. Overload: more deadline-carrying sessions than the admission cap
//      admits at once, with a bimodal deadline mix (5ms: infeasible by
//      construction, single-query work exceeds it; 3000ms: feasible
//      unless the pool degrades badly). The deadline-miss rate must
//      therefore sit strictly inside (0,1) — a pinned 0.0 or 1.0 means
//      the scenario measures a constant, not degradation.
//   4. Query cache: the epoch-keyed query/answer cache
//      (src/server/query_cache.h) under Zipf(s=1.0)-repeated traffic — a
//      second engine over an identically generated dataset runs with the
//      cache on, the cache-off engine provides reference transcripts.
//      Warm every distinct query (misses), pump 512 Zipf-skewed pooled
//      submissions (hits), apply an identical insert burst to both
//      engines (answer entries invalidate; resolutions of untouched
//      terms survive the journal), refreeze both (dead-epoch purge),
//      re-query twice (misses, then hits). Byte-identity of cache-on vs
//      cache-off transcripts is checked at every phase (always hard);
//      the probe counters are deterministic, so the >= 90% hit-rate
//      floor is hard too. Cache-on vs cache-off qps is reported and
//      soft-gated like the speedup floors.
//
// --json <path> writes BENCH_concurrent_sessions-style counters for the
// CI regression gate (deterministic counters only; timings and scheduler
// counters are info), plus a sibling BENCH_query_cache.json carrying the
// cache scenario's counters. BENCH_SOFT_SPEEDUP=1 demotes the
// speedup-floor, miss-rate-bounds and cache-qps failures to warnings
// (shared CI runners are noisy); the byte-identity equivalence checks
// and the deterministic cache-counter floors are always hard.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/banks.h"
#include "datagen/dblp_gen.h"
#include "server/query_cache.h"
#include "server/session_pool.h"
#include "util/timer.h"

using namespace banks;
using namespace banks::bench;

namespace {

constexpr const char* kQueryTexts[] = {"author soumen",     "author mohan",
                                       "paper transaction", "author sunita paper",
                                       "soumen sunita",     "seltzer sunita"};
constexpr size_t kDistinct = sizeof(kQueryTexts) / sizeof(kQueryTexts[0]);
constexpr size_t kRepeat = 8;  // query instances = kDistinct * kRepeat
constexpr size_t kSubmitters = 4;

std::vector<std::string> QueryList() {
  std::vector<std::string> queries;
  queries.reserve(kDistinct * kRepeat);
  for (size_t r = 0; r < kRepeat; ++r) {
    for (size_t i = 0; i < kDistinct; ++i) queries.push_back(kQueryTexts[i]);
  }
  return queries;
}

std::string RenderAll(const BanksEngine& engine,
                      const std::vector<ConnectionTree>& answers) {
  std::string out;
  for (const auto& tree : answers) out += engine.Render(tree);
  return out;
}

struct RunResult {
  double wall_s = 0;
  std::vector<double> latency_ms;       // per query, submit -> drained
  std::vector<std::string> rendered;    // per query, full transcript
  size_t answers = 0;
  server::PoolStats pool_stats;         // scheduler counters (pool runs)
};

RunResult RunSerial(const BanksEngine& engine,
                    const std::vector<std::string>& queries) {
  RunResult result;
  result.latency_ms.resize(queries.size());
  result.rendered.resize(queries.size());
  std::vector<std::vector<ConnectionTree>> answers(queries.size());
  Timer wall;
  for (size_t i = 0; i < queries.size(); ++i) {
    Timer t;
    auto session = engine.OpenSession({.text = queries[i]});
    if (session.ok()) answers[i] = session.value().Drain();
    result.latency_ms[i] = t.Millis();
  }
  result.wall_s = wall.Seconds();
  for (size_t i = 0; i < queries.size(); ++i) {  // untimed: presentation
    result.rendered[i] = RenderAll(engine, answers[i]);
    result.answers += answers[i].size();
  }
  return result;
}

RunResult RunPool(const BanksEngine& engine,
                  const std::vector<std::string>& queries, size_t workers) {
  server::PoolOptions popts;
  popts.num_workers = workers;
  // Default adaptive quanta: initial_quantum small for fast first answers,
  // growing geometrically to step_quantum so long sessions amortize
  // scheduling to near zero (this is what production serving would use).
  // The admission cap is the serving-side working-set bound: ~2 runnable
  // sessions per worker keeps caches warm (fair round-robin over dozens
  // of heavy frontiers would thrash), the rest wait FIFO.
  popts.max_active = workers * 2;
  popts.max_waiting = 4096;
  server::SessionPool pool(engine, popts);

  RunResult result;
  result.latency_ms.resize(queries.size());
  result.rendered.resize(queries.size());
  std::vector<std::vector<ConnectionTree>> answers(queries.size());
  Timer wall;
  {
    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (size_t t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&, t] {
        // Each submitter owns the stripe i % kSubmitters == t: it fires
        // the whole stripe, then drains handle by handle — so many
        // sessions are in flight per thread and the pool decides order.
        std::vector<size_t> mine;
        std::vector<server::SessionHandle> handles;
        std::vector<Timer> start;
        for (size_t i = t; i < queries.size(); i += kSubmitters) {
          mine.push_back(i);
          start.emplace_back();
          auto submitted = pool.Submit({.text = queries[i]});
          handles.push_back(submitted.ok()
                                ? std::move(submitted).value()
                                : server::SessionHandle{});
        }
        for (size_t j = 0; j < mine.size(); ++j) {
          answers[mine[j]] = handles[j].Drain();  // own stripe slot: no race
          result.latency_ms[mine[j]] = start[j].Millis();
        }
      });
    }
    for (auto& s : submitters) s.join();
  }
  result.wall_s = wall.Seconds();
  result.pool_stats = pool.stats();
  for (size_t i = 0; i < queries.size(); ++i) {  // untimed: presentation
    result.rendered[i] = RenderAll(engine, answers[i]);
    result.answers += answers[i].size();
  }
  return result;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  size_t idx = std::min(values.size() - 1,
                        static_cast<size_t>(p * double(values.size())));
  return values[idx];
}

double Ratio(double num, double den) { return den == 0 ? 0 : num / den; }

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("bench_concurrent_sessions — SessionPool scaling",
              "serving-side extension: concurrent sessions over one "
              "immutable snapshot");
  const std::string json_path = BenchReport::JsonPathFromArgs(argc, argv);
  BenchReport report("bench_concurrent_sessions");
  const bool soft = std::getenv("BENCH_SOFT_SPEEDUP") != nullptr;

  DblpConfig config = EvalDblpConfig();
  config.num_authors = 2'000;
  config.num_papers = 4'000;
  DblpDataset ds = GenerateDblp(config);
  BanksEngine engine(std::move(ds.db), EvalWorkload::DefaultOptions());
  std::printf("graph: %zu nodes / %zu edges\n",
              engine.data_graph().graph.num_nodes(),
              engine.data_graph().graph.num_edges());

  const auto queries = QueryList();
  std::printf("%zu query instances (%zu distinct x %zu), %zu submitter "
              "threads, %u hardware threads\n\n",
              queries.size(), kDistinct, kRepeat, kSubmitters,
              std::thread::hardware_concurrency());

  // Interleaved best-of rounds: serial and every pool width run once per
  // round, and each mode is scored by its best round. Back-to-back
  // single measurements made the *ratio* hostage to whichever run an
  // external load spike hit; interleaving plus best-of compares the two
  // modes at their respective unloaded capability.
  constexpr int kRounds = 3;
  const size_t kWidths[] = {1, 2, 4, 8};
  RunResult serial;       // best round
  double serial_qps = 0;
  RunResult pooled[4];    // best round per width
  double pooled_qps[4] = {0, 0, 0, 0};
  bool identical = true;
  for (int round = 0; round < kRounds; ++round) {
    RunResult s = RunSerial(engine, queries);
    const double qps = double(queries.size()) / s.wall_s;
    if (qps > serial_qps) {
      serial_qps = qps;
      serial = std::move(s);
    }
    for (size_t w = 0; w < 4; ++w) {
      RunResult p = RunPool(engine, queries, kWidths[w]);
      // Byte-identity is checked on *every* round, not just the kept one.
      for (size_t i = 0; i < queries.size(); ++i) {
        if (p.rendered[i] != serial.rendered[i]) {
          identical = false;
          std::printf("!! divergence: round=%d workers=%zu query #%zu '%s'\n",
                      round, kWidths[w], i, queries[i].c_str());
        }
      }
      const double pool_qps = double(queries.size()) / p.wall_s;
      if (pool_qps > pooled_qps[w]) {
        pooled_qps[w] = pool_qps;
        pooled[w] = std::move(p);
      }
    }
  }

  std::printf("best of %d interleaved rounds per mode:\n", kRounds);
  std::printf("%-10s %8s %9s %9s %9s %9s  %s\n", "mode", "workers", "qps",
              "speedup", "p50-ms", "p99-ms", "answers");
  PrintRule();
  std::printf("%-10s %8s %9.1f %9s %9.2f %9.2f  %zu\n", "serial", "-",
              serial_qps, "1.00x", Percentile(serial.latency_ms, 0.5),
              Percentile(serial.latency_ms, 0.99), serial.answers);

  report.Counter("serial/answers", double(serial.answers));
  report.Info("serial/qps", serial_qps);
  report.Info("serial/p50_ms", Percentile(serial.latency_ms, 0.5));
  report.Info("serial/p99_ms", Percentile(serial.latency_ms, 0.99));

  // Hardware-aware floors (ratios, not absolute qps): perfect scaling at
  // w workers is min(w, hw); require half of it, but never less than the
  // scheduling-overhead bound 0.55x that must hold even without real
  // parallelism (on one core the OS timeslices submitters against the
  // worker, so overlap that multicore turns into speedup shows up as
  // cache-locality loss instead). With >= 8 hardware threads this is the
  // ROADMAP target: >= 4x serial qps at 8 workers.
  const unsigned hw = std::thread::hardware_concurrency();
  auto floor_for = [hw](size_t workers) {
    const double parallel = 0.5 * double(std::min<size_t>(workers, hw));
    return std::max(0.55, parallel);
  };

  bool floors_ok = true;
  double speedup8 = 0;
  for (size_t w = 0; w < 4; ++w) {
    const size_t workers = kWidths[w];
    const double qps = pooled_qps[w];
    const double speedup = qps / serial_qps;
    if (workers == 8) speedup8 = speedup;
    if (speedup < floor_for(workers)) floors_ok = false;
    const server::PoolStats& ps = pooled[w].pool_stats;
    const double avg_quantum = Ratio(double(ps.quantum_steps), double(ps.slices));
    const double avg_batch =
        Ratio(double(ps.answers_published), double(ps.publishes));
    std::printf("%-10s %8zu %9.1f %8.2fx %9.2f %9.2f  %zu\n", "pool",
                workers, qps, speedup, Percentile(pooled[w].latency_ms, 0.5),
                Percentile(pooled[w].latency_ms, 0.99), pooled[w].answers);
    std::printf("%-10s   slices %zu (local %zu + stolen %zu), avg quantum "
                "%.0f, %zu answers in %zu publish batches (%.1f/batch)\n",
                "", ps.slices, ps.local_pops, ps.steals, avg_quantum,
                ps.answers_published, ps.publishes, avg_batch);
    const std::string prefix = "pool_w" + std::to_string(workers) + "/";
    report.Counter(prefix + "answers", double(pooled[w].answers));
    report.Info(prefix + "qps", qps);
    report.Info(prefix + "speedup", speedup);
    report.Info(prefix + "p50_ms", Percentile(pooled[w].latency_ms, 0.5));
    report.Info(prefix + "p99_ms", Percentile(pooled[w].latency_ms, 0.99));
    report.Info(prefix + "slices", double(ps.slices));
    report.Info(prefix + "steals", double(ps.steals));
    report.Info(prefix + "local_pops", double(ps.local_pops));
    report.Info(prefix + "publishes", double(ps.publishes));
    report.Info(prefix + "avg_publish_batch", avg_batch);
    report.Info(prefix + "avg_quantum", avg_quantum);
  }

  // ------------------------------------------------------------- overload
  // Twice the admission cap's worth of deadline-carrying sessions, two
  // workers, bimodal deadlines: 5ms is below single-query work on any
  // realistic machine (guaranteed misses), 3000ms is feasible unless the
  // pool degrades to multi-second latencies (guaranteed hits for a
  // healthy scheduler). A healthy pool therefore lands strictly inside
  // (0,1); the exact value is machine-dependent (info, not gated), the
  // bounds are the gate.
  double miss_rate = 0;
  {
    server::PoolOptions popts;
    popts.num_workers = 2;
    popts.step_quantum = 8192;  // keep preemption tight under deadlines
    popts.max_active = 8;
    popts.max_waiting = 4096;
    server::SessionPool pool(engine, popts);
    std::vector<server::SessionHandle> handles;
    const size_t overload_n = 64;
    for (size_t i = 0; i < overload_n; ++i) {
      Budget budget = Budget::WithTimeout(std::chrono::milliseconds(
          i % 2 == 0 ? 5 : 3000));
      auto submitted = pool.Submit({.text = queries[i % queries.size()], .search = engine.options().search, .budget = budget});
      if (submitted.ok()) handles.push_back(std::move(submitted).value());
    }
    size_t missed = 0, delivered = 0;
    for (auto& handle : handles) {
      delivered += handle.Drain().size();
      handle.Wait();
      if (handle.stats().truncation == Truncation::kDeadline) ++missed;
    }
    miss_rate = double(missed) / double(handles.size());
    std::printf("\noverload: %zu sessions (5ms/3000ms deadlines) over "
                "max_active=8, 2 workers:\n  deadline-miss rate %.0f%%, "
                "%zu answers delivered before truncation\n",
                handles.size(), miss_rate * 100, delivered);
    report.Info("overload/miss_rate", miss_rate);
    report.Info("overload/answers", double(delivered));
  }

  // ---------------------------------------------------------- query cache
  // Section 4 (see the file comment): Zipfian repetition against the
  // epoch-keyed cache, byte-identity against the cache-off engine at every
  // phase, invalidation via an identical insert burst, purge via refreeze.
  BenchReport cache_report("bench_query_cache");
  double cache_hit_rate = 0;
  bool cache_identical = true;
  bool cache_floors_ok = true;
  double cache_qps_on = 0, cache_qps_off = 0;
  uint64_t cache_purged = 0;
  server::QueryCacheStats cache_stats;
  {
    DblpDataset ds_on = GenerateDblp(config);  // same config => same graph
    BanksOptions cache_options = EvalWorkload::DefaultOptions();
    cache_options.cache.enabled = true;
    BanksEngine cached(std::move(ds_on.db), cache_options);

    size_t divergences = 0;
    auto note_divergence = [&](const char* phase, const std::string& query) {
      cache_identical = false;
      if (++divergences <= 4) {
        std::printf("!! cache divergence: phase=%s query '%s'\n", phase,
                    query.c_str());
      }
    };
    // One serial pass over the distinct queries on both engines, comparing
    // transcripts. Each pass costs exactly kDistinct answer probes on the
    // cached engine; what they classify as (miss/hit/invalidation) depends
    // on where the pass sits in the protocol.
    auto serial_round = [&](const char* phase) {
      for (size_t i = 0; i < kDistinct; ++i) {
        std::string on, off;
        auto on_session = cached.OpenSession({.text = kQueryTexts[i]});
        if (on_session.ok()) on = RenderAll(cached, on_session.value().Drain());
        auto off_session = engine.OpenSession({.text = kQueryTexts[i]});
        if (off_session.ok()) {
          off = RenderAll(engine, off_session.value().Drain());
        }
        if (on != off || on_session.ok() != off_session.ok()) {
          note_divergence(phase, kQueryTexts[i]);
        }
      }
    };

    serial_round("warm");  // kDistinct cold misses fill the cache

    // Zipf(s=1.0) over the distinct queries: weight 1/(rank+1), sampled
    // with a fixed-seed LCG so the workload (and the counters) are
    // deterministic. Skew means the head query dominates — the regime the
    // cache exists for.
    constexpr size_t kZipfQueries = 512;
    std::vector<std::string> zipf;
    zipf.reserve(kZipfQueries);
    {
      double weight[kDistinct];
      double total = 0;
      for (size_t i = 0; i < kDistinct; ++i) {
        weight[i] = 1.0 / double(i + 1);
        total += weight[i];
      }
      uint64_t lcg = 0x9e3779b97f4a7c15ull;
      for (size_t n = 0; n < kZipfQueries; ++n) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        double u = double(lcg >> 33) / double(1ull << 31) * total;
        size_t pick = 0;
        while (pick + 1 < kDistinct && u >= weight[pick]) {
          u -= weight[pick];
          ++pick;
        }
        zipf.push_back(kQueryTexts[pick]);
      }
    }
    RunResult zipf_on = RunPool(cached, zipf, /*workers=*/4);
    RunResult zipf_off = RunPool(engine, zipf, /*workers=*/4);
    cache_qps_on = double(zipf.size()) / zipf_on.wall_s;
    cache_qps_off = double(zipf.size()) / zipf_off.wall_s;
    for (size_t i = 0; i < zipf.size(); ++i) {
      if (zipf_on.rendered[i] != zipf_off.rendered[i]) {
        note_divergence("zipf", zipf[i]);
      }
    }

    // Identical insert burst on both engines: the pending bump invalidates
    // every answer entry; the burst's tokens overlap some query terms
    // (transaction/soumen/sunita) but not others (author/mohan/seltzer),
    // so the journal keeps the untouched resolutions alive.
    auto burst = [&](BanksEngine& target) {
      std::vector<Mutation> batch;
      batch.push_back(Mutation::Insert(
          kPaperTable, Tuple({Value(std::string("P_cache0")),
                              Value(std::string("caching transaction"))})));
      batch.push_back(Mutation::Insert(
          kPaperTable, Tuple({Value(std::string("P_cache1")),
                              Value(std::string("soumen caching results"))})));
      batch.push_back(Mutation::Insert(
          kPaperTable, Tuple({Value(std::string("P_cache2")),
                              Value(std::string("sunita caching results"))})));
      for (auto& applied : target.ApplyBatch(std::move(batch))) {
        if (!applied.ok()) cache_floors_ok = false;
      }
    };
    burst(cached);
    burst(engine);
    serial_round("after-burst");  // kDistinct answer invalidations

    auto refrozen_on = cached.Refreeze();
    auto refrozen_off = engine.Refreeze();
    if (!refrozen_on.ok() || !refrozen_off.ok()) {
      cache_floors_ok = false;
    } else {
      cache_purged = refrozen_on.value().cache_entries_purged;
    }
    serial_round("after-refreeze");  // kDistinct misses (dead epoch purged)
    serial_round("steady");          // kDistinct hits again

    cache_stats = cached.query_cache_stats();
  }

  // Every answer probe classifies as exactly one of hit/miss/invalidation;
  // resolution invalidations share the invalidation counter, which only
  // makes this denominator (and the floor) conservative.
  const double classified = double(cache_stats.hits + cache_stats.misses +
                                   cache_stats.invalidations);
  cache_hit_rate = classified == 0 ? 0 : double(cache_stats.hits) / classified;
  std::printf("\nquery cache: Zipf(s=1.0) x %d pooled + 4 serial rounds over "
              "%zu distinct queries\n  hits %llu, misses %llu, invalidations "
              "%llu, hit rate %.1f%% (floor 90%%)\n  resolutions: %llu reused "
              "/ %llu resolved; refreeze purged %llu entries\n  qps cache-on "
              "%.1f vs cache-off %.1f (%.2fx)\n",
              512, kDistinct,
              static_cast<unsigned long long>(cache_stats.hits),
              static_cast<unsigned long long>(cache_stats.misses),
              static_cast<unsigned long long>(cache_stats.invalidations),
              cache_hit_rate * 100,
              static_cast<unsigned long long>(cache_stats.resolution_hits),
              static_cast<unsigned long long>(cache_stats.resolution_misses),
              static_cast<unsigned long long>(cache_purged), cache_qps_on,
              cache_qps_off, Ratio(cache_qps_on, cache_qps_off));
  // Deterministic floors (hard): the protocol constructs >= 90% hits, at
  // least kDistinct invalidations, resolution reuse across the burst, and
  // a non-empty refreeze purge. A miss here is a cache behaviour change,
  // not machine noise.
  if (cache_hit_rate < 0.9) {
    cache_floors_ok = false;
    std::printf("!! cache hit rate %.1f%% below the 90%% floor\n",
                cache_hit_rate * 100);
  }
  if (cache_stats.invalidations < kDistinct || cache_stats.resolution_hits == 0 ||
      cache_purged == 0) {
    cache_floors_ok = false;
    std::printf("!! cache lifecycle counters missed their floors\n");
  }
  bool cache_qps_ok = cache_qps_on > cache_qps_off;
  if (!cache_qps_ok) {
    std::printf("!! cache-on qps did not beat cache-off qps\n");
  }
  cache_report.Counter("cache/identical", cache_identical ? 1.0 : 0.0);
  cache_report.Counter("cache/hits", double(cache_stats.hits));
  cache_report.Counter("cache/misses", double(cache_stats.misses));
  cache_report.Counter("cache/invalidations",
                       double(cache_stats.invalidations));
  cache_report.Counter("cache/resolution_hits",
                       double(cache_stats.resolution_hits));
  cache_report.Counter("cache/resolution_misses",
                       double(cache_stats.resolution_misses));
  cache_report.Counter("cache/purged", double(cache_purged));
  cache_report.Counter("cache/hit_rate_pct", cache_hit_rate * 100);
  cache_report.Info("cache/qps_on", cache_qps_on);
  cache_report.Info("cache/qps_off", cache_qps_off);
  cache_report.Info("cache/speedup", Ratio(cache_qps_on, cache_qps_off));
  cache_report.Info("cache/insertions", double(cache_stats.insertions));
  cache_report.Info("cache/evictions", double(cache_stats.evictions));

  PrintRule();
  std::printf("results byte-identical to serial on every run: %s\n",
              identical ? "yes" : "NO");
  std::printf("8-worker speedup %.2fx on %u hardware thread(s); "
              "floors (>= half of perfect scaling, min 0.55x): %s\n",
              speedup8, hw, floors_ok ? "met at every worker count" : "MISSED");
  const bool miss_rate_in_bounds = miss_rate > 0.0 && miss_rate < 1.0;
  std::printf("overload miss rate %.2f strictly inside (0,1): %s\n",
              miss_rate, miss_rate_in_bounds ? "yes" : "NO");
  std::printf("cache-on transcripts byte-identical to cache-off: %s; "
              "hit rate %.1f%%, deterministic floors: %s\n",
              cache_identical ? "yes" : "NO", cache_hit_rate * 100,
              cache_floors_ok ? "met" : "MISSED");
  if (!json_path.empty()) {
    if (!report.WriteJson(json_path)) return 1;
    // The cache scenario reports next to the pool report so the CI smoke
    // loop and the baseline refresher pick both up from one binary run.
    const size_t slash = json_path.find_last_of('/');
    const std::string cache_json =
        (slash == std::string::npos ? std::string()
                                    : json_path.substr(0, slash + 1)) +
        "BENCH_query_cache.json";
    if (!cache_report.WriteJson(cache_json)) return 1;
  }
  bool gates_ok = floors_ok && miss_rate_in_bounds && cache_qps_ok;
  if (!gates_ok && soft) {
    std::printf("WARNING: speedup floor / miss-rate bounds / cache qps "
                "missed (soft mode; not failing)\n");
    gates_ok = true;
  }
  return (identical && cache_identical && cache_floors_ok && gates_ok) ? 0 : 1;
}
