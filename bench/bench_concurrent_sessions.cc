// bench_concurrent_sessions — SessionPool throughput, latency and
// deadline behaviour on the DBLP workload.
//
// Three sections:
//   1. Equivalence: every pooled session must render byte-identical
//      answers to its serial OpenSession+drain run — concurrency is
//      transparent (shared immutable snapshot, confined steppers). This
//      is a hard failure if violated.
//   2. Scaling: the same query list through pools of 1/2/4/8 workers,
//      submitted and drained by 4 submitter threads. Reports throughput
//      (queries/s), speedup over serial draining, and per-query p50/p99
//      submit-to-drained latency. With 8 workers the pool must sustain
//      >= 4x serial throughput (scaled down when the machine has fewer
//      than 8 hardware threads).
//   3. Overload: more deadline-carrying sessions than the admission cap
//      admits at once; reports the deadline-miss rate (sessions truncated
//      by their Budget deadline) under the EDF scheduler.
//
// --json <path> writes BENCH_concurrent_sessions-style counters for the
// CI regression gate (deterministic counters only; timings are info).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/banks.h"
#include "server/session_pool.h"
#include "util/timer.h"

using namespace banks;
using namespace banks::bench;

namespace {

constexpr const char* kQueryTexts[] = {"author soumen",     "author mohan",
                                       "paper transaction", "author sunita paper",
                                       "soumen sunita",     "seltzer sunita"};
constexpr size_t kDistinct = sizeof(kQueryTexts) / sizeof(kQueryTexts[0]);
constexpr size_t kRepeat = 8;  // query instances = kDistinct * kRepeat
constexpr size_t kSubmitters = 4;

std::vector<std::string> QueryList() {
  std::vector<std::string> queries;
  queries.reserve(kDistinct * kRepeat);
  for (size_t r = 0; r < kRepeat; ++r) {
    for (size_t i = 0; i < kDistinct; ++i) queries.push_back(kQueryTexts[i]);
  }
  return queries;
}

std::string RenderAll(const BanksEngine& engine,
                      const std::vector<ConnectionTree>& answers) {
  std::string out;
  for (const auto& tree : answers) out += engine.Render(tree);
  return out;
}

struct RunResult {
  double wall_s = 0;
  std::vector<double> latency_ms;       // per query, submit -> drained
  std::vector<std::string> rendered;    // per query, full transcript
  size_t answers = 0;
};

RunResult RunSerial(const BanksEngine& engine,
                    const std::vector<std::string>& queries) {
  RunResult result;
  result.latency_ms.resize(queries.size());
  result.rendered.resize(queries.size());
  Timer wall;
  for (size_t i = 0; i < queries.size(); ++i) {
    Timer t;
    auto session = engine.OpenSession(queries[i]);
    std::vector<ConnectionTree> answers;
    if (session.ok()) answers = session.value().Drain();
    result.latency_ms[i] = t.Millis();
    result.rendered[i] = RenderAll(engine, answers);
    result.answers += answers.size();
  }
  result.wall_s = wall.Seconds();
  return result;
}

RunResult RunPool(const BanksEngine& engine,
                  const std::vector<std::string>& queries, size_t workers) {
  server::PoolOptions popts;
  popts.num_workers = workers;
  popts.step_quantum = 8192;
  // The admission cap is the serving-side working-set bound: ~2 runnable
  // sessions per worker keeps caches warm (fair round-robin over dozens
  // of heavy frontiers would thrash), the rest wait FIFO.
  popts.max_active = workers * 2;
  popts.max_waiting = 4096;
  server::SessionPool pool(engine, popts);

  RunResult result;
  result.latency_ms.resize(queries.size());
  result.rendered.resize(queries.size());
  std::vector<size_t> counts(kSubmitters, 0);
  Timer wall;
  {
    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (size_t t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&, t] {
        // Each submitter owns the stripe i % kSubmitters == t: it fires
        // the whole stripe, then drains handle by handle — so many
        // sessions are in flight per thread and the pool decides order.
        std::vector<size_t> mine;
        std::vector<server::SessionHandle> handles;
        std::vector<Timer> start;
        for (size_t i = t; i < queries.size(); i += kSubmitters) {
          mine.push_back(i);
          start.emplace_back();
          auto submitted = pool.Submit(queries[i]);
          handles.push_back(submitted.ok()
                                ? std::move(submitted).value()
                                : server::SessionHandle{});
        }
        for (size_t j = 0; j < mine.size(); ++j) {
          auto answers = handles[j].Drain();
          result.latency_ms[mine[j]] = start[j].Millis();
          result.rendered[mine[j]] = RenderAll(engine, answers);
          counts[t] += answers.size();
        }
      });
    }
    for (auto& s : submitters) s.join();
  }
  result.wall_s = wall.Seconds();
  for (size_t c : counts) result.answers += c;
  return result;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  size_t idx = std::min(values.size() - 1,
                        static_cast<size_t>(p * double(values.size())));
  return values[idx];
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("bench_concurrent_sessions — SessionPool scaling",
              "serving-side extension: concurrent sessions over one "
              "immutable snapshot");
  const std::string json_path = BenchReport::JsonPathFromArgs(argc, argv);
  BenchReport report("bench_concurrent_sessions");

  DblpConfig config = EvalDblpConfig();
  config.num_authors = 2'000;
  config.num_papers = 4'000;
  DblpDataset ds = GenerateDblp(config);
  BanksEngine engine(std::move(ds.db), EvalWorkload::DefaultOptions());
  std::printf("graph: %zu nodes / %zu edges\n",
              engine.data_graph().graph.num_nodes(),
              engine.data_graph().graph.num_edges());

  const auto queries = QueryList();
  std::printf("%zu query instances (%zu distinct x %zu), %zu submitter "
              "threads, %u hardware threads\n\n",
              queries.size(), kDistinct, kRepeat, kSubmitters,
              std::thread::hardware_concurrency());

  RunResult serial = RunSerial(engine, queries);
  const double serial_qps = double(queries.size()) / serial.wall_s;
  std::printf("%-10s %8s %9s %9s %9s %9s  %s\n", "mode", "workers", "qps",
              "speedup", "p50-ms", "p99-ms", "answers");
  PrintRule();
  std::printf("%-10s %8s %9.1f %9s %9.2f %9.2f  %zu\n", "serial", "-",
              serial_qps, "1.00x", Percentile(serial.latency_ms, 0.5),
              Percentile(serial.latency_ms, 0.99), serial.answers);

  report.Counter("serial/answers", double(serial.answers));
  report.Info("serial/qps", serial_qps);
  report.Info("serial/p50_ms", Percentile(serial.latency_ms, 0.5));
  report.Info("serial/p99_ms", Percentile(serial.latency_ms, 0.99));

  bool identical = true;
  double speedup8 = 0;
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    RunResult pooled = RunPool(engine, queries, workers);
    const double qps = double(queries.size()) / pooled.wall_s;
    const double speedup = qps / serial_qps;
    if (workers == 8) speedup8 = speedup;
    for (size_t i = 0; i < queries.size(); ++i) {
      if (pooled.rendered[i] != serial.rendered[i]) {
        identical = false;
        std::printf("!! divergence: workers=%zu query #%zu '%s'\n", workers,
                    i, queries[i].c_str());
      }
    }
    std::printf("%-10s %8zu %9.1f %8.2fx %9.2f %9.2f  %zu\n", "pool",
                workers, qps, speedup, Percentile(pooled.latency_ms, 0.5),
                Percentile(pooled.latency_ms, 0.99), pooled.answers);
    const std::string prefix = "pool_w" + std::to_string(workers) + "/";
    report.Counter(prefix + "answers", double(pooled.answers));
    report.Info(prefix + "qps", qps);
    report.Info(prefix + "speedup", speedup);
    report.Info(prefix + "p50_ms", Percentile(pooled.latency_ms, 0.5));
    report.Info(prefix + "p99_ms", Percentile(pooled.latency_ms, 0.99));
  }

  // ------------------------------------------------------------- overload
  // Twice the admission cap's worth of deadline-carrying sessions, two
  // workers: EDF keeps feasible deadlines; the rest truncate. The miss
  // rate is machine-dependent (info, not gated).
  {
    server::PoolOptions popts;
    popts.num_workers = 2;
    popts.step_quantum = 1024;
    popts.max_active = 8;
    popts.max_waiting = 4096;
    server::SessionPool pool(engine, popts);
    std::vector<server::SessionHandle> handles;
    const size_t overload_n = 64;
    for (size_t i = 0; i < overload_n; ++i) {
      Budget budget = Budget::WithTimeout(std::chrono::milliseconds(
          i % 2 == 0 ? 5 : 50));
      auto submitted = pool.Submit(queries[i % queries.size()],
                                   engine.options().search, budget);
      if (submitted.ok()) handles.push_back(std::move(submitted).value());
    }
    size_t missed = 0, delivered = 0;
    for (auto& handle : handles) {
      delivered += handle.Drain().size();
      handle.Wait();
      if (handle.stats().truncation == Truncation::kDeadline) ++missed;
    }
    const double miss_rate = double(missed) / double(handles.size());
    std::printf("\noverload: %zu sessions (5ms/50ms deadlines) over "
                "max_active=8, 2 workers:\n  deadline-miss rate %.0f%%, "
                "%zu answers delivered before truncation\n",
                handles.size(), miss_rate * 100, delivered);
    report.Info("overload/miss_rate", miss_rate);
    report.Info("overload/answers", double(delivered));
  }

  PrintRule();
  // Hardware-aware acceptance floor: 4x with 8 workers wherever the
  // machine has >= 8 threads, proportionally lower with fewer cores; a
  // machine without real parallelism (< 2 threads) can only check
  // equivalence — a cooperative pool cannot out-run serial on one core.
  const unsigned hw = std::thread::hardware_concurrency();
  double floor = 0.0;
  if (hw >= 8) {
    floor = 4.0;
  } else if (hw >= 2) {
    floor = 0.5 * double(hw);  // perfect scaling is hw; require half
  }
  std::printf("results byte-identical to serial on every run: %s\n",
              identical ? "yes" : "NO");
  if (floor > 0) {
    std::printf("8-worker speedup %.2fx (required floor %.2fx on %u "
                "hardware threads)\n", speedup8, floor, hw);
  } else {
    std::printf("8-worker speedup %.2fx (no floor enforced: %u hardware "
                "thread(s), throughput scaling unmeasurable)\n",
                speedup8, hw);
  }
  if (!json_path.empty() && !report.WriteJson(json_path)) return 1;
  // BENCH_SOFT_SPEEDUP=1 (set by CI, whose shared runners have noisy
  // throughput) demotes a floor miss to a warning; the byte-identical
  // equivalence check is always hard.
  bool floor_ok = speedup8 >= floor;
  if (!floor_ok && std::getenv("BENCH_SOFT_SPEEDUP") != nullptr) {
    std::printf("WARNING: speedup floor missed (soft mode; not failing)\n");
    floor_ok = true;
  }
  return (identical && floor_ok) ? 0 : 1;
}
