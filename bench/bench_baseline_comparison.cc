// A4 — baselines: exact Steiner DP (quality) and exhaustive enumeration.
//
// §3: "The computation of minimum Steiner trees is already a hard
// (NP complete) problem" — BANKS uses a heuristic. This bench measures how
// close the heuristic's best answer is to the exact minimum connection
// tree (Dreyfus–Wagner DP) on subsampled graphs, and how much cheaper it
// is than the DP.
#include <cstdio>

#include "bench_common.h"
#include "core/steiner_baseline.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace banks;
using namespace banks::bench;

int main() {
  PrintHeader("bench_baseline_comparison — BANKS heuristic vs exact Steiner",
              "§3 hardness discussion (no figure)");

  // Moderate graph: the DP is O(3^k n + 2^k m log n), so keep n small.
  DblpConfig config;
  config.num_authors = 120;
  config.num_papers = 150;
  config.seed = 42;
  DblpDataset ds = GenerateDblp(config);
  GraphBuildOptions graph_options = EvalWorkload::DefaultOptions().graph;
  DataGraph dg = BuildDataGraph(ds.db, graph_options);
  std::printf("\ngraph: %zu nodes, %zu edges\n", dg.graph.num_nodes(),
              dg.graph.num_edges());

  Rng rng(1234);
  std::printf("\n%-8s %12s %12s %10s | %12s %12s\n", "trial", "banks w",
              "optimal w", "ratio", "banks(ms)", "exact(ms)");
  double ratio_sum = 0;
  int trials_done = 0;
  double banks_ms_sum = 0, exact_ms_sum = 0;
  for (int trial = 0; trial < 12; ++trial) {
    // Two random keyword nodes (author tuples).
    const Table* author = ds.db.table(kAuthorTable);
    NodeId a = dg.NodeForRid(
        Rid{author->id(), (uint32_t)rng.Uniform(author->num_rows())});
    NodeId b = dg.NodeForRid(
        Rid{author->id(), (uint32_t)rng.Uniform(author->num_rows())});
    if (a == b) continue;
    std::vector<std::vector<NodeId>> terms = {{a}, {b}};

    SearchOptions opts;
    opts.max_answers = 10;
    opts.scoring.lambda = 0.0;       // pure proximity for weight comparison
    opts.scoring.edge_log = false;
    Timer tb;
    BackwardSearch bs(dg, opts);
    auto answers = bs.Run(terms);
    double banks_ms = tb.Millis();

    Timer te;
    auto exact = ExactSteinerTree(dg.graph, terms);
    double exact_ms = te.Millis();

    if (answers.empty() || !exact.found) continue;
    double best = answers[0].tree_weight;
    for (const auto& t : answers) best = std::min(best, t.tree_weight);
    double ratio = best / exact.weight;
    std::printf("%-8d %12.1f %12.1f %10.3f | %12.2f %12.2f\n", trial, best,
                exact.weight, ratio, banks_ms, exact_ms);
    ratio_sum += ratio;
    banks_ms_sum += banks_ms;
    exact_ms_sum += exact_ms;
    ++trials_done;
  }
  if (trials_done > 0) {
    std::printf("\navg weight ratio (heuristic/optimal): %.3f   "
                "avg time: %.2f ms vs %.2f ms\n",
                ratio_sum / trials_done, banks_ms_sum / trials_done,
                exact_ms_sum / trials_done);
  }
  std::printf("shape check: the heuristic's top-10 contains a near-optimal "
              "tree at a fraction of the DP's cost.\n");
  return 0;
}
