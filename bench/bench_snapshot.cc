// Snapshot persistence cost model (src/snapshot/): cold-start latency
// from CSV storage vs from a snapshot file, at the bulk scale (~40K
// rows, the same dataset bench_refreeze uses for its merge section).
//
// Both cold starts begin from bytes on disk and end at the first
// answered query; they share the CSV storage load (tuples must be in
// memory either way), and differ only in how the derived state appears:
//   - CSV path:      LoadDatabase + BanksEngine(db)   — full graph +
//                    index build.
//   - snapshot path: LoadDatabase + FromSnapshot(db)  — mmap the file,
//                    point views at it, zero per-element copies.
//
// Gated counters (deterministic):
//   derive_speedup_10x_floor — 1 iff the derive phase (build vs open) is
//                              at least 10x faster from the snapshot.
//                              The observed ratio (info) runs far above
//                              the floor, so the gate is stable.
//   identical                — the loaded LiveState is byte-identical to
//                              the built one (LiveStatesIdentical).
//   mapped_views             — graph + inverted + numeric readers all
//                              serve from the mapping (is_view), i.e.
//                              the zero-copy contract held.
//   nodes / edges            — scale fingerprint of the dataset.
// Info: phase timings, file size, write/open throughput, end-to-end
// ratio (machine-dependent, never gated).
#include <cstdio>
#include <string>
#include <utility>

#include "bench_common.h"
#include "core/banks.h"
#include "snapshot/snapshot.h"
#include "storage/csv.h"
#include "update/state_compare.h"
#include "util/timer.h"

using namespace banks;
using namespace banks::bench;

namespace {

/// The bench_refreeze bulk scale: ~40K rows once Writes/Cites links are
/// counted, big enough that a full derive visibly costs and the
/// mmap-vs-rebuild gap is unmistakable.
DblpConfig SnapshotScaleConfig() {
  DblpConfig config;
  config.num_authors = 4000;
  config.num_papers = 8000;
  config.seed = 42;
  return config;
}

constexpr const char* kFirstQuery = "soumen sunita";

size_t FirstQueryAnswers(const BanksEngine& engine) {
  auto result = engine.Search({.text = kFirstQuery});
  return result.ok() ? result.value().answers.size() : 0;
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("bench_snapshot — cold start: CSV rebuild vs mmap'd snapshot",
              "snapshot persistence: src/snapshot/ (single-file arena "
              "format)");
  const std::string json_path = BenchReport::JsonPathFromArgs(argc, argv);
  BenchReport report("bench_snapshot");

  const std::string csv_dir = "bench_snapshot_data";
  const std::string snap_path = "bench_snapshot_state.banks";

  // ---- stage the on-disk artifacts: CSV storage + one snapshot file.
  DblpDataset ds = GenerateDblp(SnapshotScaleConfig());
  const size_t total_rows = ds.db.TotalRows();
  Status saved_csv = SaveDatabase(ds.db, csv_dir);
  if (!saved_csv.ok()) {
    std::fprintf(stderr, "SaveDatabase failed: %s\n",
                 saved_csv.ToString().c_str());
    return 1;
  }
  BanksEngine builder(std::move(ds.db), EvalWorkload::DefaultOptions());
  Timer write_timer;
  auto written = builder.SaveSnapshot(snap_path);
  const double snapshot_write_ms = write_timer.Millis();
  if (!written.ok()) {
    std::fprintf(stderr, "SaveSnapshot failed: %s\n",
                 written.status().ToString().c_str());
    return 1;
  }
  const double file_mb =
      static_cast<double>(written.value().file_bytes) / (1024.0 * 1024.0);

  // ---- cold start A: CSV storage, full derive.
  Timer csv_total;
  Timer csv_load_timer;
  auto csv_db = LoadDatabase(csv_dir);
  const double csv_load_ms = csv_load_timer.Millis();
  if (!csv_db.ok()) {
    std::fprintf(stderr, "LoadDatabase failed: %s\n",
                 csv_db.status().ToString().c_str());
    return 1;
  }
  Timer build_timer;
  BanksEngine rebuilt(std::move(csv_db).value(),
                      EvalWorkload::DefaultOptions());
  const double build_ms = build_timer.Millis();
  const size_t csv_answers = FirstQueryAnswers(rebuilt);
  const double csv_total_ms = csv_total.Millis();

  // ---- cold start B: CSV storage, snapshot-mapped derive.
  Timer snap_total;
  Timer snap_load_timer;
  auto snap_db = LoadDatabase(csv_dir);
  const double snap_load_ms = snap_load_timer.Millis();
  if (!snap_db.ok()) {
    std::fprintf(stderr, "LoadDatabase failed: %s\n",
                 snap_db.status().ToString().c_str());
    return 1;
  }
  Timer open_timer;
  auto restarted =
      BanksEngine::FromSnapshot(std::move(snap_db).value(), snap_path,
                                EvalWorkload::DefaultOptions());
  const double open_ms = open_timer.Millis();
  if (!restarted.ok()) {
    std::fprintf(stderr, "FromSnapshot failed: %s\n",
                 restarted.status().ToString().c_str());
    return 1;
  }
  BanksEngine& loaded = *restarted.value();
  const size_t snap_answers = FirstQueryAnswers(loaded);
  const double snap_total_ms = snap_total.Millis();

  // ---- contracts: byte identity, zero-copy views, identical answers.
  std::string diff;
  const bool identical =
      LiveStatesIdentical(*builder.state(), *loaded.state(), &diff);
  if (!identical) {
    std::fprintf(stderr, "loaded state differs from built state: %s\n",
                 diff.c_str());
    return 1;
  }
  const bool mapped_views = loaded.state()->dg->graph.is_view() &&
                            loaded.state()->index->is_view() &&
                            loaded.state()->numeric->is_view();
  if (csv_answers != snap_answers) {
    std::fprintf(stderr, "answer mismatch: csv=%zu snapshot=%zu\n",
                 csv_answers, snap_answers);
    return 1;
  }

  const double derive_speedup = open_ms > 0 ? build_ms / open_ms : 0.0;
  const double total_speedup =
      snap_total_ms > 0 ? csv_total_ms / snap_total_ms : 0.0;

  std::printf("%zu rows, %zu nodes / %zu edges; snapshot %.1f MB "
              "(written in %.1f ms, %.0f MB/s)\n",
              total_rows, builder.data_graph().graph.num_nodes(),
              builder.data_graph().graph.num_edges(), file_mb,
              snapshot_write_ms,
              snapshot_write_ms > 0 ? file_mb / (snapshot_write_ms / 1000.0)
                                    : 0.0);
  std::printf("%-22s %12s %12s %12s %12s\n", "cold start", "csv_load_ms",
              "derive_ms", "query_ans", "total_ms");
  std::printf("%-22s %12.1f %12.1f %12zu %12.1f\n", "csv (full build)",
              csv_load_ms, build_ms, csv_answers, csv_total_ms);
  std::printf("%-22s %12.1f %12.1f %12zu %12.1f\n", "snapshot (mmap)",
              snap_load_ms, open_ms, snap_answers, snap_total_ms);
  std::printf("derive speedup %.0fx (gate floor 10x), end-to-end %.1fx, "
              "identical=%d, mapped_views=%d\n",
              derive_speedup, total_speedup, identical ? 1 : 0,
              mapped_views ? 1 : 0);

  report.Counter("derive_speedup_10x_floor", derive_speedup >= 10.0 ? 1 : 0);
  report.Counter("identical", identical ? 1 : 0);
  report.Counter("mapped_views", mapped_views ? 1 : 0);
  report.Counter("first_query_answers", static_cast<double>(csv_answers));
  report.Counter("nodes",
                 static_cast<double>(builder.data_graph().graph.num_nodes()));
  report.Counter("edges",
                 static_cast<double>(builder.data_graph().graph.num_edges()));
  report.Info("rows", static_cast<double>(total_rows));
  report.Info("snapshot_file_mb", file_mb);
  report.Info("snapshot_write_ms", snapshot_write_ms);
  report.Info("csv_load_ms", csv_load_ms);
  report.Info("build_ms", build_ms);
  report.Info("open_ms", open_ms);
  report.Info("csv_total_ms", csv_total_ms);
  report.Info("snapshot_total_ms", snap_total_ms);
  report.Info("derive_speedup", derive_speedup);
  report.Info("total_speedup", total_speedup);

  std::remove(snap_path.c_str());
  if (!json_path.empty() && !report.WriteJson(json_path)) return 1;
  return 0;
}
