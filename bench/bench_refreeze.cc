// Live-ingestion cost model (src/update/): delta-overlay query overhead,
// online refreeze latency, and the bulk-ingest path (ApplyBatch +
// merge-refreeze) as functions of delta size, on DBLP.
//
// Section 1 — overlay overhead (delta sizes {0, 64, 256, 1024}): for each
// delta size D the bench rebuilds a fresh engine, ingests D mutations (a
// new paper plus a Writes link to an existing author per pair, so the
// overlay grows nodes *and* cross-boundary edges), then
//   - runs a fixed query mix and reports iterator visits (deterministic,
//     CI-gated) and wall latency (info) — the price queries pay for
//     consulting the overlay instead of a pure frozen CSR;
//   - measures Apply() throughput (copy-on-write overlay publication);
//   - measures Refreeze(): the off-serving-path rebuild + atomic swap,
//     and verifies the ingested data stays searchable afterwards.
// The D=0 row is the frozen-only baseline: its visits pin the sentinel
// cost of the null-overlay hot path (byte-identical work to pre-update
// builds, enforced by the checked-in baseline).
//
// Section 2 — bulk ingest (delta sizes {64, 1024, 8192}): one engine
// ingests D mutations through a single ApplyBatch (one overlay clone) and
// merge-refreezes (O(base + delta) link-table patch); a twin engine
// ingests the same batch and full-rebuilds. Gated counters: the merge
// path ran (mergeD/merged) and its snapshot is byte-identical to the full
// rebuild (mergeD/identical, via LiveStatesIdentical). Info: batch-apply
// vs serial-apply wall time (linear vs quadratic overlay cloning; serial
// is skipped past 1024 where the quadratic cost dominates the bench) and
// merge vs full refreeze latency (delta-bound vs database-bound).
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/banks.h"
#include "update/state_compare.h"
#include "util/timer.h"

using namespace banks;
using namespace banks::bench;

namespace {

constexpr const char* kQueries[] = {
    "soumen sunita", "gray transaction", "mohan recovery",
    "stonebraker sunita", "ingested corpus",
};

struct QueryTotals {
  size_t visits = 0;
  size_t answers = 0;
  double ms = 0;
};

QueryTotals RunQueryMix(const BanksEngine& engine, int repeats) {
  QueryTotals totals;
  Timer t;
  for (int r = 0; r < repeats; ++r) {
    for (const char* q : kQueries) {
      auto result = engine.Search({.text = q});
      if (!result.ok()) continue;
      totals.visits += result.value().stats.iterator_visits;
      totals.answers += result.value().answers.size();
    }
  }
  totals.ms = t.Millis();
  // Visits are deterministic; only report one repeat's worth so the
  // counter is independent of the timing-oriented repeat count.
  totals.visits /= repeats;
  totals.answers /= repeats;
  return totals;
}

/// Section-2 scale: ~10x the evaluation dataset (~40K rows), so the
/// largest delta (8192) is still a fraction of the base and the
/// delta-bound vs database-bound refreeze costs separate cleanly.
DblpConfig BulkDblpConfig() {
  DblpConfig config;
  config.num_authors = 4000;
  config.num_papers = 8000;
  config.seed = 42;
  return config;
}

/// The section-2 ingest burst: papers + authorship links, "ingested
/// corpus" keywords so the query mix touches the new rows.
std::vector<Mutation> MakeIngestBatch(size_t delta,
                                      const std::string& coauthor) {
  std::vector<Mutation> batch;
  batch.reserve(delta);
  for (size_t i = 0; i < delta; i += 2) {
    const std::string pid = "P_ing" + std::to_string(i);
    batch.push_back(Mutation::Insert(
        kPaperTable,
        Tuple({Value(pid),
               Value("Ingested Corpus Volume " + std::to_string(i))})));
    if (i + 1 < delta) {
      batch.push_back(Mutation::Insert(
          kWritesTable, Tuple({Value(coauthor), Value(pid)})));
    }
  }
  return batch;
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("bench_refreeze — delta-overlay overhead and refreeze latency",
              "live ingestion: update/ subsystem (ROADMAP online refreeze)");
  const std::string json_path = BenchReport::JsonPathFromArgs(argc, argv);
  BenchReport report("bench_refreeze");

  const int kQueryRepeats = 5;
  const size_t kDeltaSizes[] = {0, 64, 256, 1024};

  std::printf("%8s %12s %10s %10s %12s %12s %12s\n", "delta", "visits/mix",
              "answers", "apply_ms", "querymix_ms", "refreeze_ms",
              "post_nodes");
  for (size_t delta : kDeltaSizes) {
    DblpDataset ds = GenerateDblp(EvalDblpConfig());
    const std::string coauthor = ds.planted.soumen;
    BanksEngine engine(std::move(ds.db), EvalWorkload::DefaultOptions());

    // Ingest: papers + authorship links, all carrying the "ingested
    // corpus" keywords so the query mix touches the overlay.
    Timer apply_timer;
    for (size_t i = 0; i < delta; i += 2) {
      const std::string pid = "P_ing" + std::to_string(i);
      auto rid = engine.InsertTuple(
          kPaperTable,
          Tuple({Value(pid),
                 Value("Ingested Corpus Volume " + std::to_string(i))}));
      if (!rid.ok()) {
        std::fprintf(stderr, "insert failed: %s\n",
                     rid.status().ToString().c_str());
        return 1;
      }
      if (i + 1 < delta) {
        auto link = engine.InsertTuple(
            kWritesTable, Tuple({Value(coauthor), Value(pid)}));
        if (!link.ok()) {
          std::fprintf(stderr, "insert failed: %s\n",
                       link.status().ToString().c_str());
          return 1;
        }
      }
    }
    const double apply_ms = apply_timer.Millis();

    QueryTotals mix = RunQueryMix(engine, kQueryRepeats);

    Timer refreeze_timer;
    auto stats = engine.Refreeze(/*force=*/true);
    const double refreeze_ms = refreeze_timer.Millis();
    if (!stats.ok()) {
      std::fprintf(stderr, "refreeze failed\n");
      return 1;
    }
    // Post-swap sanity: the ingested data survived the fold.
    QueryTotals post = RunQueryMix(engine, 1);

    const std::string key = "delta" + std::to_string(delta);
    report.Counter(key + "/visits", static_cast<double>(mix.visits));
    report.Counter(key + "/answers", static_cast<double>(mix.answers));
    report.Counter(key + "/post_refreeze_answers",
                   static_cast<double>(post.answers));
    report.Counter(key + "/absorbed",
                   static_cast<double>(stats.value().mutations_absorbed));
    report.Info(key + "/apply_ms", apply_ms);
    report.Info(key + "/querymix_ms", mix.ms);
    report.Info(key + "/refreeze_ms", refreeze_ms);
    report.Info(key + "/rebuild_ms", stats.value().rebuild_ms);

    std::printf("%8zu %12zu %10zu %10.2f %12.2f %12.2f %12zu\n", delta,
                mix.visits, mix.answers, apply_ms, mix.ms, refreeze_ms,
                stats.value().nodes);
  }

  // ------------------------------------------- section 2: bulk ingest
  PrintRule();
  std::printf("bulk ingest: ApplyBatch + merge-refreeze vs serial Apply + "
              "full rebuild\n");
  std::printf("%8s %10s %10s %10s %10s %10s %10s\n", "delta", "batch_ms",
              "serial_ms", "merge_ms", "full_ms", "merged", "identical");
  const size_t kBulkSizes[] = {64, 1024, 8192};
  for (size_t delta : kBulkSizes) {
    DblpDataset merge_ds = GenerateDblp(BulkDblpConfig());
    const std::string coauthor = merge_ds.planted.soumen;
    BanksOptions merge_opts = EvalWorkload::DefaultOptions();
    merge_opts.update.merge_refreeze = true;
    BanksEngine merge_engine(std::move(merge_ds.db), merge_opts);

    // One overlay clone for the whole burst.
    Timer batch_timer;
    auto batch_results = merge_engine.ApplyBatch(MakeIngestBatch(delta, coauthor));
    const double batch_ms = batch_timer.Millis();
    for (const auto& r : batch_results) {
      if (!r.ok()) {
        std::fprintf(stderr, "batch insert failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
    }
    Timer merge_timer;
    auto merge_stats = merge_engine.Refreeze(/*force=*/true);
    const double merge_ms = merge_timer.Millis();
    if (!merge_stats.ok()) {
      std::fprintf(stderr, "merge refreeze failed\n");
      return 1;
    }

    // The oracle twin: same data, same batch, full rebuild.
    DblpDataset full_ds = GenerateDblp(BulkDblpConfig());
    BanksOptions full_opts = EvalWorkload::DefaultOptions();
    full_opts.update.merge_refreeze = false;
    BanksEngine full_engine(std::move(full_ds.db), full_opts);
    for (const auto& r : full_engine.ApplyBatch(MakeIngestBatch(delta, coauthor))) {
      if (!r.ok()) {
        std::fprintf(stderr, "twin insert failed\n");
        return 1;
      }
    }
    Timer full_timer;
    auto full_stats = full_engine.Refreeze(/*force=*/true);
    const double full_ms = full_timer.Millis();
    if (!full_stats.ok()) {
      std::fprintf(stderr, "full refreeze failed\n");
      return 1;
    }

    // Serial Apply throughput, the quadratic baseline the batch replaces.
    // Skipped past 1024: the per-mutation overlay clone makes it O(K²).
    double serial_ms = -1.0;
    if (delta <= 1024) {
      DblpDataset serial_ds = GenerateDblp(BulkDblpConfig());
      BanksEngine serial_engine(std::move(serial_ds.db),
                                EvalWorkload::DefaultOptions());
      Timer serial_timer;
      for (Mutation& m : MakeIngestBatch(delta, coauthor)) {
        if (!serial_engine.Apply(std::move(m)).ok()) {
          std::fprintf(stderr, "serial insert failed\n");
          return 1;
        }
      }
      serial_ms = serial_timer.Millis();
    }

    std::string diff;
    const bool identical =
        LiveStatesIdentical(*merge_engine.state(), *full_engine.state(), &diff);
    if (!identical || !merge_stats.value().merged) {
      // Hard failure, not just a counter: byte-identity of the merge path
      // is this bench's contract with CI.
      std::fprintf(stderr, "merge refreeze broke its contract at delta %zu: "
                   "merged=%d identical=%d %s\n",
                   delta, merge_stats.value().merged ? 1 : 0, identical ? 1 : 0,
                   diff.c_str());
      return 1;
    }
    QueryTotals post = RunQueryMix(merge_engine, 1);

    const std::string key = "merge" + std::to_string(delta);
    report.Counter(key + "/merged",
                   merge_stats.value().merged ? 1.0 : 0.0);
    report.Counter(key + "/identical", identical ? 1.0 : 0.0);
    report.Counter(key + "/absorbed",
                   static_cast<double>(merge_stats.value().mutations_absorbed));
    report.Counter(key + "/post_refreeze_answers",
                   static_cast<double>(post.answers));
    report.Info(key + "/batch_apply_ms", batch_ms);
    report.Info(key + "/serial_apply_ms", serial_ms);
    report.Info(key + "/merge_refreeze_ms", merge_ms);
    report.Info(key + "/full_refreeze_ms", full_ms);
    report.Info(key + "/batch_mutations_per_s",
                batch_ms > 0 ? delta / (batch_ms / 1000.0) : 0.0);

    std::printf("%8zu %10.2f %10.2f %10.2f %10.2f %10d %10d\n", delta,
                batch_ms, serial_ms, merge_ms, full_ms,
                merge_stats.value().merged ? 1 : 0, identical ? 1 : 0);
  }

  if (!json_path.empty() && !report.WriteJson(json_path)) return 1;
  return 0;
}
