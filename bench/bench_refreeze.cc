// Live-ingestion cost model (src/update/): delta-overlay query overhead
// and online refreeze latency as functions of delta size, on DBLP.
//
// For each delta size D the bench rebuilds a fresh engine, ingests D
// mutations (a new paper plus a Writes link to an existing author per
// pair, so the overlay grows nodes *and* cross-boundary edges), then
//   - runs a fixed query mix and reports iterator visits (deterministic,
//     CI-gated) and wall latency (info) — the price queries pay for
//     consulting the overlay instead of a pure frozen CSR;
//   - measures Apply() throughput (copy-on-write overlay publication);
//   - measures Refreeze(): the off-serving-path rebuild + atomic swap,
//     and verifies the ingested data stays searchable afterwards.
// The D=0 row is the frozen-only baseline: its visits pin the sentinel
// cost of the null-overlay hot path (byte-identical work to pre-update
// builds, enforced by the checked-in baseline).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/banks.h"
#include "util/timer.h"

using namespace banks;
using namespace banks::bench;

namespace {

constexpr const char* kQueries[] = {
    "soumen sunita", "gray transaction", "mohan recovery",
    "stonebraker sunita", "ingested corpus",
};

struct QueryTotals {
  size_t visits = 0;
  size_t answers = 0;
  double ms = 0;
};

QueryTotals RunQueryMix(const BanksEngine& engine, int repeats) {
  QueryTotals totals;
  Timer t;
  for (int r = 0; r < repeats; ++r) {
    for (const char* q : kQueries) {
      auto result = engine.Search(q);
      if (!result.ok()) continue;
      totals.visits += result.value().stats.iterator_visits;
      totals.answers += result.value().answers.size();
    }
  }
  totals.ms = t.Millis();
  // Visits are deterministic; only report one repeat's worth so the
  // counter is independent of the timing-oriented repeat count.
  totals.visits /= repeats;
  totals.answers /= repeats;
  return totals;
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("bench_refreeze — delta-overlay overhead and refreeze latency",
              "live ingestion: update/ subsystem (ROADMAP online refreeze)");
  const std::string json_path = BenchReport::JsonPathFromArgs(argc, argv);
  BenchReport report("bench_refreeze");

  const int kQueryRepeats = 5;
  const size_t kDeltaSizes[] = {0, 64, 256, 1024};

  std::printf("%8s %12s %10s %10s %12s %12s %12s\n", "delta", "visits/mix",
              "answers", "apply_ms", "querymix_ms", "refreeze_ms",
              "post_nodes");
  for (size_t delta : kDeltaSizes) {
    DblpDataset ds = GenerateDblp(EvalDblpConfig());
    const std::string coauthor = ds.planted.soumen;
    BanksEngine engine(std::move(ds.db), EvalWorkload::DefaultOptions());

    // Ingest: papers + authorship links, all carrying the "ingested
    // corpus" keywords so the query mix touches the overlay.
    Timer apply_timer;
    for (size_t i = 0; i < delta; i += 2) {
      const std::string pid = "P_ing" + std::to_string(i);
      auto rid = engine.InsertTuple(
          kPaperTable,
          Tuple({Value(pid),
                 Value("Ingested Corpus Volume " + std::to_string(i))}));
      if (!rid.ok()) {
        std::fprintf(stderr, "insert failed: %s\n",
                     rid.status().ToString().c_str());
        return 1;
      }
      if (i + 1 < delta) {
        auto link = engine.InsertTuple(
            kWritesTable, Tuple({Value(coauthor), Value(pid)}));
        if (!link.ok()) {
          std::fprintf(stderr, "insert failed: %s\n",
                       link.status().ToString().c_str());
          return 1;
        }
      }
    }
    const double apply_ms = apply_timer.Millis();

    QueryTotals mix = RunQueryMix(engine, kQueryRepeats);

    Timer refreeze_timer;
    auto stats = engine.Refreeze(/*force=*/true);
    const double refreeze_ms = refreeze_timer.Millis();
    if (!stats.ok()) {
      std::fprintf(stderr, "refreeze failed\n");
      return 1;
    }
    // Post-swap sanity: the ingested data survived the fold.
    QueryTotals post = RunQueryMix(engine, 1);

    const std::string key = "delta" + std::to_string(delta);
    report.Counter(key + "/visits", static_cast<double>(mix.visits));
    report.Counter(key + "/answers", static_cast<double>(mix.answers));
    report.Counter(key + "/post_refreeze_answers",
                   static_cast<double>(post.answers));
    report.Counter(key + "/absorbed",
                   static_cast<double>(stats.value().mutations_absorbed));
    report.Info(key + "/apply_ms", apply_ms);
    report.Info(key + "/querymix_ms", mix.ms);
    report.Info(key + "/refreeze_ms", refreeze_ms);
    report.Info(key + "/rebuild_ms", stats.value().rebuild_ms);

    std::printf("%8zu %12zu %10zu %10.2f %12.2f %12.2f %12zu\n", delta,
                mix.visits, mix.answers, apply_ms, mix.ms, refreeze_ms,
                stats.value().nodes);
  }

  if (!json_path.empty() && !report.WriteJson(json_path)) return 1;
  return 0;
}
