// E2 — incrementality of backward expanding search (§3).
//
// The motivation for the iterator-heap design: "we also wish to generate
// answers incrementally to avoid generating answers of low relevance that
// the user may never look at." This bench compares the incremental search
// (stop at k) against the generate-everything-then-sort strawman, for
// time-to-first-k answers.
#include <cstdio>

#include "bench_common.h"
#include "util/timer.h"

using namespace banks;
using namespace banks::bench;

int main() {
  PrintHeader("bench_incremental — time to top-k vs exhaustive generation",
              "§3 (design motivation; no figure)");

  DblpConfig config = EvalDblpConfig();
  DblpDataset ds = GenerateDblp(config);
  BanksEngine engine(std::move(ds.db), EvalWorkload::DefaultOptions());

  const char* queries[] = {"soumen sunita", "seltzer sunita",
                           "gray transaction"};
  std::printf("\n%-20s %6s | %12s %10s | %12s %10s | %8s\n", "query", "k",
              "incr(ms)", "trees", "exhaust(ms)", "trees", "speedup");
  for (const char* q : queries) {
    for (size_t k : {1, 10}) {
      SearchOptions incremental = engine.options().search;
      incremental.max_answers = k;
      Timer ti;
      auto ri = engine.Search({.text = q, .search = incremental});
      double incr_ms = ti.Millis();

      SearchOptions exhaustive = engine.options().search;
      exhaustive.exhaustive = true;
      Timer te;
      auto re = engine.Search({.text = q, .search = exhaustive});
      double exh_ms = te.Millis();

      if (!ri.ok() || !re.ok()) continue;
      std::printf("%-20s %6zu | %12.2f %10zu | %12.2f %10zu | %7.1fx\n", q,
                  k, incr_ms, ri.value().stats.trees_generated, exh_ms,
                  re.value().stats.trees_generated,
                  exh_ms / std::max(incr_ms, 0.01));
      // Sanity: the incremental top answer agrees with the exhaustive one.
      if (!ri.value().answers.empty() && !re.value().answers.empty()) {
        bool same = ri.value().answers[0].UndirectedSignature() ==
                    re.value().answers[0].UndirectedSignature();
        if (!same) {
          std::printf("%-20s        (note: top answer differs from "
                      "exhaustive order — heap approximation)\n", "");
        }
      }
    }
  }
  std::printf("\nshape check: incremental top-k generation is far cheaper "
              "than exhausting the answer space.\n");
  return 0;
}
