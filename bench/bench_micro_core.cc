// Micro-benchmarks (google-benchmark) for the core primitives: graph
// construction, shortest-path iterator throughput, inverted-index lookup
// and end-to-end query latency. These are engineering numbers (no paper
// counterpart) used to track regressions.
#include <benchmark/benchmark.h>

#include "core/backward_search.h"
#include "core/expansion_iterator.h"
#include "datagen/dblp_gen.h"
#include "eval/workload.h"

namespace banks {
namespace {

const DblpDataset& SharedDataset() {
  static const DblpDataset* ds = [] {
    DblpConfig config;
    config.num_authors = 2'000;
    config.num_papers = 4'000;
    return new DblpDataset(GenerateDblp(config));
  }();
  return *ds;
}

const BanksEngine& SharedEngine() {
  static const BanksEngine* engine = [] {
    DblpConfig config;
    config.num_authors = 2'000;
    config.num_papers = 4'000;
    DblpDataset ds = GenerateDblp(config);
    return new BanksEngine(std::move(ds.db),
                           EvalWorkload::DefaultOptions());
  }();
  return *engine;
}

void BM_GraphBuild(benchmark::State& state) {
  const Database& db = SharedDataset().db;
  for (auto _ : state) {
    DataGraph dg = BuildDataGraph(db);
    benchmark::DoNotOptimize(dg.graph.num_edges());
  }
}
BENCHMARK(BM_GraphBuild)->Unit(benchmark::kMillisecond);

void BM_InvertedIndexBuild(benchmark::State& state) {
  const Database& db = SharedDataset().db;
  for (auto _ : state) {
    InvertedIndex index;
    index.Build(db);
    benchmark::DoNotOptimize(index.num_postings());
  }
}
BENCHMARK(BM_InvertedIndexBuild)->Unit(benchmark::kMillisecond);

void BM_IndexLookup(benchmark::State& state) {
  const BanksEngine& engine = SharedEngine();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.inverted_index().Lookup("transaction"));
    benchmark::DoNotOptimize(engine.inverted_index().Lookup("soumen"));
  }
}
BENCHMARK(BM_IndexLookup);

void BM_ExpansionIteratorFullSweep(benchmark::State& state) {
  const BanksEngine& engine = SharedEngine();
  const FrozenGraph& g = engine.data_graph().graph;
  for (auto _ : state) {
    ExpansionIterator it(g, 0);
    size_t visits = 0;
    while (it.HasNext()) {
      it.Next();
      ++visits;
    }
    benchmark::DoNotOptimize(visits);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_nodes()));
}
BENCHMARK(BM_ExpansionIteratorFullSweep)->Unit(benchmark::kMillisecond);

void BM_QueryTwoKeywords(benchmark::State& state) {
  const BanksEngine& engine = SharedEngine();
  for (auto _ : state) {
    auto result = engine.Search({.text = "soumen sunita"});
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_QueryTwoKeywords)->Unit(benchmark::kMillisecond);

void BM_QuerySingleKeywordPrestige(benchmark::State& state) {
  const BanksEngine& engine = SharedEngine();
  for (auto _ : state) {
    auto result = engine.Search({.text = "mohan"});
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_QuerySingleKeywordPrestige)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace banks

BENCHMARK_MAIN();
