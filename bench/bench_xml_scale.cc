// A8 — extension experiment: keyword search over shredded XML (§6/§7).
//
// Exports the synthetic DBLP database as XML, shreds it back through the
// Element/Attribute containment model, and compares search behaviour and
// cost against the native relational representation of the same data.
#include <cstdio>

#include "bench_common.h"
#include "util/timer.h"
#include "xml/xml_export.h"
#include "xml/xml_shred.h"

using namespace banks;
using namespace banks::bench;

int main() {
  PrintHeader("bench_xml_scale — search over shredded XML vs native tables",
              "§6/§7 XML support (no figure)");

  DblpConfig config;
  config.num_authors = 1'000;
  config.num_papers = 2'000;
  DblpDataset ds = GenerateDblp(config);

  // Native relational engine.
  Timer t_rel;
  BanksEngine relational(std::move(ds.db), EvalWorkload::DefaultOptions());
  double rel_build_s = t_rel.Seconds();

  // Same data as one XML document, shredded.
  Timer t_export;
  std::string xml = ExportDatabaseXml(relational.db());
  double export_s = t_export.Seconds();
  Timer t_shred;
  auto shredded = XmlToDatabase(xml);
  if (!shredded.ok()) {
    std::printf("shred failed: %s\n", shredded.status().ToString().c_str());
    return 1;
  }
  double shred_s = t_shred.Seconds();
  Timer t_xml_engine;
  BanksEngine xml_engine(std::move(shredded).value());
  double xml_build_s = t_xml_engine.Seconds();

  std::printf("\nXML document: %.1f MB (export %.2f s, parse+shred %.2f s)\n",
              xml.size() / (1024.0 * 1024.0), export_s, shred_s);
  std::printf("%-22s %14s %14s\n", "", "relational", "shredded XML");
  std::printf("%-22s %14zu %14zu\n", "graph nodes",
              relational.data_graph().graph.num_nodes(),
              xml_engine.data_graph().graph.num_nodes());
  std::printf("%-22s %14zu %14zu\n", "graph edges",
              relational.data_graph().graph.num_edges(),
              xml_engine.data_graph().graph.num_edges());
  std::printf("%-22s %14.2f %14.2f\n", "engine build (s)", rel_build_s,
              xml_build_s);

  std::printf("\n%-22s | %10s %8s | %10s %8s\n", "query", "rel(ms)", "ans",
              "xml(ms)", "ans");
  for (const char* q : {"soumen sunita", "transaction", "gray transaction"}) {
    Timer tr;
    auto rel_result = relational.Search({.text = q});
    double rel_ms = tr.Millis();
    Timer tx;
    auto xml_result = xml_engine.Search({.text = q});
    double xml_ms = tx.Millis();
    std::printf("%-22s | %10.1f %8zu | %10.1f %8zu\n", q, rel_ms,
                rel_result.ok() ? rel_result.value().answers.size() : 0,
                xml_ms,
                xml_result.ok() ? xml_result.value().answers.size() : 0);
  }
  std::printf("\nshape check: the XML path answers the same keyword queries; "
              "the generic row/column\nshredding costs extra nodes but the "
              "containment edges keep related values close.\n");
  return 0;
}
