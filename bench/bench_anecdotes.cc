// E4 — §5.1 anecdotes: every qualitative ranking claim of the paper, rerun.
//
//  - "Mohan"                -> C. Mohan, then Mohan Ahuja, then Mohan Kamat
//  - "transaction"          -> Gray's classic + the Gray&Reuter book top-2
//  - "computer engineering" -> the CSE department above title-only theses
//  - "sudarshan aditya"     -> Aditya's thesis advised by Sudarshan
//  - "soumen sunita"        -> the co-authored papers (Figure 2)
//  - "seltzer sunita"       -> Stonebraker as the bridging root
#include <cstdio>
#include <string>

#include "bench_common.h"

using namespace banks;
using namespace banks::bench;

namespace {

bool AnswerContains(const BanksEngine& engine, const ConnectionTree& tree,
                    const std::string& label) {
  for (NodeId n : tree.Nodes()) {
    ConnectionTree probe;
    probe.root = n;
    if (engine.RootLabel(probe) == label) return true;
  }
  return false;
}

void RunQuery(const BanksEngine& engine, const std::string& query,
              const std::vector<std::pair<std::string, std::string>>&
                  expectations) {
  std::printf("\nquery: \"%s\"\n", query.c_str());
  auto result = engine.Search({.text = query});
  if (!result.ok()) {
    std::printf("  FAILED: %s\n", result.status().ToString().c_str());
    return;
  }
  const auto& answers = result.value().answers;
  for (size_t i = 0; i < answers.size() && i < 5; ++i) {
    std::printf("  #%zu  rel=%.4f  root=%s\n", i + 1, answers[i].relevance,
                engine.RootLabel(answers[i]).c_str());
  }
  for (const auto& [description, label] : expectations) {
    int rank = -1;
    for (size_t i = 0; i < answers.size(); ++i) {
      if (AnswerContains(engine, answers[i], label)) {
        rank = static_cast<int>(i) + 1;
        break;
      }
    }
    std::printf("  expect %-46s -> %s (rank %d)\n", description.c_str(),
                rank > 0 ? "FOUND" : "MISSING", rank);
  }
}

}  // namespace

int main() {
  PrintHeader("bench_anecdotes — the §5.1 anecdotal queries", "§5.1");

  EvalWorkload workload(EvalDblpConfig(), EvalThesisConfig());
  const BanksEngine& dblp = workload.dblp_engine();
  const BanksEngine& thesis = workload.thesis_engine();
  const DblpPlanted& dp = workload.dblp_planted();
  const ThesisPlanted& tp = workload.thesis_planted();

  RunQuery(dblp, "mohan",
           {{"C. Mohan first (most prolific)",
             "Author(" + dp.c_mohan + ")"},
            {"Mohan Ahuja next", "Author(" + dp.mohan_ahuja + ")"},
            {"Mohan Kamat last", "Author(" + dp.mohan_kamat + ")"}});

  RunQuery(dblp, "transaction",
           {{"Gray's classic paper",
             "Paper(" + dp.gray_transaction_paper + ")"},
            {"Gray & Reuter book", "Paper(" + dp.gray_reuter_book + ")"}});

  RunQuery(dblp, "soumen sunita",
           {{"ChakrabartiSD98 (Figure 2)",
             "Paper(" + dp.soumen_sunita_papers[0] + ")"},
            {"second joint paper",
             "Paper(" + dp.soumen_sunita_papers[1] + ")"}});

  RunQuery(dblp, "seltzer sunita",
           {{"Stonebraker as the bridge",
             "Author(" + dp.stonebraker + ")"}});

  RunQuery(thesis, "computer engineering",
           {{"the CSE department node", "Department(" + tp.cse_dept + ")"}});

  RunQuery(thesis, "sudarshan aditya",
           {{"Aditya's thesis advised by Sudarshan",
             "Thesis(" + tp.aditya_thesis + ")"}});
  return 0;
}
