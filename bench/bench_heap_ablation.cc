// A1 — ablation: the fixed-size output heap (§3).
//
// "we maintain a small fixed-size heap of generated connection trees ...
// While this heuristic does not guarantee that the trees are generated in
// decreasing order, we have found it works well even with a reasonably
// small heap size." This bench sweeps the heap capacity and measures how
// close the emitted order is to the exact relevance order (pairwise
// inversion fraction) plus the §5.3 error metric.
#include <cstdio>

#include "bench_common.h"

using namespace banks;
using namespace banks::bench;

namespace {

double InversionFraction(const std::vector<ConnectionTree>& answers) {
  size_t inversions = 0, pairs = 0;
  for (size_t i = 0; i < answers.size(); ++i) {
    for (size_t j = i + 1; j < answers.size(); ++j) {
      ++pairs;
      inversions += (answers[i].relevance < answers[j].relevance);
    }
  }
  return pairs == 0 ? 0.0 : static_cast<double>(inversions) /
                                static_cast<double>(pairs);
}

}  // namespace

int main() {
  PrintHeader("bench_heap_ablation — output heap size vs ranking quality",
              "§3 heuristic discussion (no figure)");

  EvalWorkload workload(EvalDblpConfig(), EvalThesisConfig());

  std::printf("\n%-10s %18s %16s\n", "heap", "avg inversion frac",
              "avg scaled error");
  for (size_t heap : {1, 2, 5, 10, 20, 50, 200}) {
    double inv_sum = 0;
    double err_sum = 0;
    for (const auto& q : workload.queries()) {
      const BanksEngine& engine = workload.engine_for(q);
      SearchOptions opts = engine.options().search;
      opts.output_heap_size = heap;
      auto result = engine.Search({.text = q.text, .search = opts});
      if (!result.ok()) continue;
      inv_sum += InversionFraction(result.value().answers);
      auto ranks = IdealRanks(result.value().answers, q.ideals,
                              engine.data_graph(), engine.db());
      err_sum += ScaledErrorScore(ranks);
    }
    double n = static_cast<double>(workload.queries().size());
    std::printf("%-10zu %18.3f %16.2f\n", heap, inv_sum / n, err_sum / n);
  }
  std::printf("\nshape check: quality saturates at a small heap size (the "
              "paper used a 'reasonably small' heap).\n");
  return 0;
}
